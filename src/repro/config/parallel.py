"""Parallel component configuration on a persistent process pool.

The component partition (:mod:`repro.config.partition`) makes fleet
configuration embarrassingly parallel: components share no variables, so
encode -> solve for one component never reads another's state.  This
module fans the per-component SAT work out across a pool of long-lived
worker processes while keeping the parent<->worker data path as thin as
the problem allows:

* the **pool** (:class:`WorkerPool`) forks one process per worker; each
  inherits (or, under spawn, is shipped) the resource-type registry and
  the engine options once, then serves any number of ``run`` requests
  over a private pipe;

* the **wire protocol is compact and framed**.  Both directions move
  explicit ``send_bytes`` frames (one pickle per message), so every
  byte that crosses the boundary is counted (:class:`WireStats`).  A
  reply carries the solver model as a *signed-literal array* -- node
  variables are allocated first and in node order by
  ``generate_constraints``, so ``array('i')`` of ``+/-var`` over the
  first ``len(component.graph)`` variables is a complete model as far
  as decoding is concerned -- plus only the fields the parent cannot
  reconstruct (solver counters, encode sizes, phase wall times).  The
  parent performs name decoding, ``selected_nodes``, value propagation
  and typechecking itself from the component graph it already holds
  (:func:`decode_component_model`); named models, deployed sets, and
  propagated instance tuples never cross the boundary.  Warm-path
  replies for unchanged models shrink to a header: the worker remembers
  the literal array it last shipped per cache entry and sends a
  ``MODEL_UNCHANGED`` flag instead of repeating it;

* **assignment is deterministic LPT** (longest processing time):
  components are taken largest-first by node count and placed on the
  least-loaded worker (:func:`lpt_assignment`).  The schedule is
  computed parent-side from component sizes alone, so results never
  depend on runtime scheduling; with ``keep=True`` the
  ``(fingerprint, index) -> worker`` map is sticky across calls, so the
  worker-resident session caches stay warm.  On uniform fleets LPT
  degenerates to round-robin (the old ``index % workers`` layout);

* **collection is streamed**: workers send one framed reply per
  component the moment it is solved, and the parent ``select``\\ s
  across the pipes (:func:`multiprocessing.connection.wait`), decoding,
  propagating and typechecking finished components while slow ones are
  still solving -- parent CPU overlaps worker CPU instead of following
  it.  Outcomes are still aggregated in component-index order, so the
  merged specification, model, and deployed set are bit-identical to
  the serial partitioned pipeline (and hence to the monolithic one);

* **warm worker caches** back configuration sessions: with ``keep=True``
  a worker retains encoding + persistent incremental solver per
  ``(fingerprint, component index)``, so repeated session calls
  re-solve under assumptions without re-encoding or re-pickling the
  component.  Caches are keyed by the partial-spec fingerprint, so
  distinct partial specs can never observe each other's state;

* **failures stay diagnosable**: an UNSAT verdict or a raised error is
  reported per component; worker exceptions carry their formatted
  remote traceback across the pickle boundary
  (:func:`raise_component_error` chains it as the ``__cause__``), and a
  worker dying mid-collection recycles the pool and reports exactly
  which components were in flight instead of deadlocking on pipes that
  still hold replies.

Wire frame layout (all frames are ``pickle.dumps`` payloads moved with
``Connection.send_bytes``):

=============  =========================================================
direction      frame
=============  =========================================================
parent->worker ``("run", fingerprint, keep, batch, force)`` where
               ``batch`` is ``[(index, component-or-None), ...]`` (bare
               indexes once the fingerprint is seeded) and ``force`` is
               a frozenset of indexes that must ship a model even if
               unchanged (the parent lost its decode cache)
parent->worker ``("evict", fingerprint)`` / ``("flush",)`` / ``("stop",)``
worker->parent one reply *per component*:
               ``(index, status, flags, model_bytes, constraint_stats,
               solver_stats, encode_ms, solve_ms, error, traceback)``
               with ``status`` in ``{"sat", "unsat", "need", "error"}``,
               ``flags`` a bitmask of ``ENCODED`` / ``SOLVER_REUSED`` /
               ``MODEL_UNCHANGED``, ``model_bytes`` the signed-literal
               ``array('i')`` bytes (None when unchanged or not sat),
               ``constraint_stats`` a 4-tuple shipped only by calls
               that encoded, and ``solver_stats`` a 9-int tuple
=============  =========================================================
"""

from __future__ import annotations

import heapq
import multiprocessing
import multiprocessing.connection
import os
import pickle
import time
import traceback as traceback_module
import weakref
from array import array
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.core.registry import ResourceTypeRegistry
from repro.config.constraints import (
    ConstraintStats,
    fact_literals,
    generate_constraints,
    selected_nodes,
)
from repro.config.engine import canonical_model
from repro.config.partition import GraphComponent
from repro.sat.encodings import ExactlyOneEncoding
from repro.sat.solver import CdclSolver, SolverStats

#: Reply flag bits (the ``flags`` field of a reply frame).
ENCODED = 1  #: this call built the encoding (worker-side cache miss)
SOLVER_REUSED = 2  #: a previously built persistent solver answered
MODEL_UNCHANGED = 4  #: model identical to the last one shipped; omitted

#: Environment override for the pool start method (CI spawn smoke leg).
START_METHOD_ENV = "ENGAGE_CONFIG_START_METHOD"


def resolve_workers(workers: int) -> int:
    """Resolve the ``workers`` knob: 0 means one per available core."""
    if workers < 0:
        raise ConfigurationError("workers must be >= 0 (0 = one per core)")
    if workers > 0:
        return workers
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without CPU affinity
        return max(1, os.cpu_count() or 1)


def lpt_assignment(sizes: Sequence[int], workers: int) -> list[int]:
    """Deterministic longest-processing-time component placement.

    Components are taken largest-first (ties broken by position) and
    each goes to the currently least-loaded worker (ties broken by
    lowest worker index), where load is the sum of assigned sizes.
    Returns one worker index per input position.  Depends only on
    ``sizes`` -- never on runtime scheduling -- so any two runs over the
    same partition produce the same placement.  On uniform sizes this
    degenerates to round-robin.
    """
    if workers < 1:
        raise ConfigurationError("lpt_assignment needs at least one worker")
    order = sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))
    loads = [(0, worker) for worker in range(workers)]
    heapq.heapify(loads)
    assignment = [0] * len(sizes)
    for position in order:
        load, worker = heapq.heappop(loads)
        assignment[position] = worker
        heapq.heappush(loads, (load + sizes[position], worker))
    return assignment


@dataclass
class WireStats:
    """Bytes and frames moved over the pipes during one dispatch."""

    reply_frames: int = 0
    reply_bytes: int = 0
    request_bytes: int = 0
    largest_reply_bytes: int = 0
    #: Wall time spent pickling+writing the request frames.
    dispatch_ms: float = 0.0
    #: Wall time the parent spent blocked waiting for replies (the
    #: complement of parent-side decode/propagate work).
    recv_wait_ms: float = 0.0


@dataclass
class ComponentOutcome:
    """Everything known about one component after a pool round-trip.

    Workers fill the solver-side fields (status, model literal bytes,
    stats, encode/solve times); the parent fills the decoded fields
    (``named_model``/``deployed``/``choices``/``instances``) and the
    parent-side timings as replies stream in.  ``status`` is ``"sat"``,
    ``"unsat"``, ``"need"`` (the worker was asked to reuse a cache entry
    it does not hold -- the pool reseeds transparently), or ``"error"``
    (``error`` carries the exception, ``traceback`` the formatted remote
    traceback).
    """

    index: int
    status: str
    worker: int = -1
    #: Signed-literal array bytes for the component's node variables;
    #: None when the model repeated (warm header) or the call failed.
    model: Optional[bytes] = None
    named_model: dict[str, bool] = field(default_factory=dict)
    deployed: frozenset = frozenset()
    choices: dict = field(default_factory=dict)
    instances: Optional[tuple] = None
    constraint_stats: Optional[ConstraintStats] = None
    solver_stats: Optional[SolverStats] = None
    encode_ms: float = 0.0
    solve_ms: float = 0.0
    #: Parent-side name-decode + selected_nodes time.
    decode_ms: float = 0.0
    #: Parent-side propagate + typecheck time.
    propagate_ms: float = 0.0
    #: Arrival offset of this reply from dispatch start (streamed
    #: collection), for the overlap trace spans.
    recv_ms: float = 0.0
    #: True when this call built the encoding (a worker-side cache miss).
    encoded: bool = False
    #: True when a previously built persistent solver answered the call.
    solver_reused: bool = False
    #: True when the worker shipped a header instead of the model.
    model_unchanged: bool = False
    error: Optional[BaseException] = None
    #: Formatted remote traceback when ``status == "error"`` inside a
    #: worker (parent-side callback errors raise with a live traceback).
    traceback: Optional[str] = None


class RemoteTraceback(Exception):
    """Carries a worker's formatted traceback into the parent's chain.

    Mirrors :class:`multiprocessing.pool.RemoteTraceback`: re-raising a
    worker exception with this as ``__cause__`` makes the remote frames
    visible in the parent's error report.
    """

    def __init__(self, tb: str) -> None:
        super().__init__(tb)
        self.tb = tb

    def __str__(self) -> str:
        return f"\n{self.tb}"


def raise_component_error(outcome: ComponentOutcome) -> None:
    """Re-raise a component's error, chaining the remote traceback."""
    error = outcome.error
    if error is None:  # pragma: no cover - defensive
        raise ConfigurationError(
            f"component {outcome.index} failed without an exception"
        )
    if outcome.traceback:
        error.__cause__ = RemoteTraceback(outcome.traceback)
    raise error


def decode_component_model(
    component: GraphComponent, model: bytes
) -> tuple[dict[str, bool], set, dict]:
    """Decode a signed-literal array against the component's own graph.

    ``generate_constraints`` allocates one variable per node, in node
    insertion order, *before* any encoding auxiliaries -- so literal
    ``j`` of the array (1-based variable ``j``) is exactly the ``j``-th
    node of ``component.graph``.  The parent holds that graph already,
    which is what lets the wire carry numbers instead of names.
    """
    literals = array("i")
    literals.frombytes(model)
    named: dict[str, bool] = {}
    for position, node in enumerate(component.graph.nodes()):
        named[node.instance_id] = literals[position] > 0
    deployed, choices = selected_nodes(component.graph, named)
    return named, deployed, choices


# -- Worker side ----------------------------------------------------------


def _pack_model(model: dict[int, bool], num_nodes: int) -> bytes:
    """The node-variable slice of ``model`` as signed-literal bytes."""
    return array(
        "i",
        [
            var if model.get(var, False) else -var
            for var in range(1, num_nodes + 1)
        ],
    ).tobytes()


def _pack_solver_stats(stats: SolverStats) -> tuple:
    return (
        stats.decisions, stats.propagations, stats.conflicts,
        stats.learned_clauses, stats.deleted_clauses, stats.restarts,
        stats.max_learned_length, stats.solve_calls, stats.components,
    )


def _unpack_solver_stats(packed: tuple) -> SolverStats:
    return SolverStats(*packed)


def _pack_constraint_stats(stats: ConstraintStats) -> tuple:
    return (stats.variables, stats.clauses, stats.facts, stats.hyperedges)


class _WorkerEntry:
    """Warm per-(fingerprint, component) state held inside a worker."""

    __slots__ = (
        "component", "formula", "constraint_stats", "assumptions",
        "solver", "canonical", "prev_model",
    )

    def __init__(self, component, formula, constraint_stats, assumptions):
        self.component = component
        self.formula = formula
        self.constraint_stats = constraint_stats
        self.assumptions = assumptions
        self.solver: Optional[CdclSolver] = None
        self.canonical: Optional[dict[int, bool]] = None
        #: The literal bytes of the previous reply, so an unchanged
        #: model ships as a bare header instead of being re-pickled.
        self.prev_model: Optional[bytes] = None


def _reply(
    index: int,
    status: str,
    flags: int = 0,
    model: Optional[bytes] = None,
    constraint_stats: Optional[tuple] = None,
    solver_stats: Optional[tuple] = None,
    encode_ms: float = 0.0,
    solve_ms: float = 0.0,
    error: Optional[BaseException] = None,
    tb: Optional[str] = None,
) -> tuple:
    return (
        index, status, flags, model, constraint_stats, solver_stats,
        encode_ms, solve_ms, error, tb,
    )


def _run_cached(
    entries: dict,
    index: int,
    component: Optional[GraphComponent],
    encoding: ExactlyOneEncoding,
    force: bool,
) -> tuple:
    """The session path: assumption-style encoding, persistent solver."""
    entry = entries.get(index)
    encode_ms = 0.0
    flags = 0
    if entry is None:
        if component is None:
            return _reply(index, "need")
        tick = time.perf_counter()
        formula, constraint_stats = generate_constraints(
            component.graph, encoding, facts_as_assumptions=True
        )
        assumptions = sorted(fact_literals(component.graph, formula).values())
        entry = _WorkerEntry(component, formula, constraint_stats, assumptions)
        entries[index] = entry
        encode_ms = (time.perf_counter() - tick) * 1000.0
        flags |= ENCODED

    tick = time.perf_counter()
    if entry.solver is None:
        entry.solver = CdclSolver(entry.formula)
    else:
        flags |= SOLVER_REUSED
    if not entry.solver.solve(entry.assumptions):
        return _reply(
            index, "unsat", flags,
            solver_stats=_pack_solver_stats(entry.solver.stats),
            encode_ms=encode_ms,
            solve_ms=(time.perf_counter() - tick) * 1000.0,
        )
    if entry.solver.stats.conflicts == 0:
        model = entry.solver.model()
    else:
        if entry.canonical is None:
            entry.canonical = canonical_model(
                entry.formula, entry.solver, entry.assumptions
            )
        model = entry.canonical
    packed = _pack_model(model, len(entry.component.graph))
    solve_ms = (time.perf_counter() - tick) * 1000.0

    wire_model: Optional[bytes] = packed
    if packed == entry.prev_model and not force:
        flags |= MODEL_UNCHANGED
        wire_model = None
    else:
        entry.prev_model = packed
    return _reply(
        index, "sat", flags, wire_model,
        constraint_stats=(
            _pack_constraint_stats(entry.constraint_stats)
            if flags & ENCODED else None
        ),
        solver_stats=_pack_solver_stats(entry.solver.stats),
        encode_ms=encode_ms, solve_ms=solve_ms,
    )


def _run_oneshot(
    index: int,
    component: GraphComponent,
    encoding: ExactlyOneEncoding,
) -> tuple:
    """The engine path: unit-fact encoding, throwaway solver -- the exact
    per-component encode/solve sequence of the serial partitioned engine,
    so stats and canonical models match it bit for bit."""
    tick = time.perf_counter()
    formula, constraint_stats = generate_constraints(
        component.graph, encoding
    )
    encode_done = time.perf_counter()
    solver = CdclSolver(formula)
    if not solver.solve():
        return _reply(
            index, "unsat", ENCODED,
            constraint_stats=_pack_constraint_stats(constraint_stats),
            solver_stats=_pack_solver_stats(solver.stats),
            encode_ms=(encode_done - tick) * 1000.0,
            solve_ms=(time.perf_counter() - encode_done) * 1000.0,
        )
    model = canonical_model(formula, solver)
    packed = _pack_model(model, len(component.graph))
    return _reply(
        index, "sat", ENCODED, packed,
        constraint_stats=_pack_constraint_stats(constraint_stats),
        solver_stats=_pack_solver_stats(solver.stats),
        encode_ms=(encode_done - tick) * 1000.0,
        solve_ms=(time.perf_counter() - encode_done) * 1000.0,
    )


def _send_frame(conn, payload: Any) -> int:
    """Pickle ``payload`` into one counted frame."""
    raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    conn.send_bytes(raw)
    return len(raw)


def _safe_send_frame(conn, reply: tuple) -> None:
    """Send ``reply``; degrade unpicklable payloads to structured errors
    instead of hanging the parent on a never-arriving frame."""
    try:
        _send_frame(conn, reply)
    except Exception as exc:  # pragma: no cover - defensive
        _send_frame(conn, _reply(
            reply[0], "error",
            error=ConfigurationError(f"unpicklable worker result: {exc!r}"),
            tb=traceback_module.format_exc(),
        ))


def _worker_main(
    conn,
    worker_index: int,
    encoding: ExactlyOneEncoding,
) -> None:
    """One worker's request loop (runs in the child process).

    Deliberately registry-free: components arrive self-contained and
    the parent owns decode/propagate/typecheck, so nothing worker-side
    needs the resource-type registry -- under ``spawn`` it is never
    even pickled.
    """
    del worker_index
    cache: dict[str, dict[int, _WorkerEntry]] = {}
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "flush":
            cache.clear()
            continue
        if kind == "evict":
            cache.pop(message[1], None)
            continue
        if kind != "run":
            # Protocol desync: better to die (the parent recycles the
            # pool and reports in-flight components) than to guess.
            break
        _, fingerprint, keep, batch, force = message
        for index, component in batch:
            try:
                if keep:
                    reply = _run_cached(
                        cache.setdefault(fingerprint, {}), index, component,
                        encoding, index in force,
                    )
                else:
                    reply = _run_oneshot(index, component, encoding)
            except Exception as exc:
                reply = _reply(
                    index, "error", error=exc,
                    tb=traceback_module.format_exc(),
                )
            # One frame per component: the parent starts decoding and
            # propagating this one while we solve the next.
            _safe_send_frame(conn, reply)
    conn.close()


# -- Parent side ----------------------------------------------------------


def _shutdown(processes, conns) -> None:
    """Best-effort pool teardown (also the GC finalizer)."""
    for conn in conns:
        try:
            _send_frame(conn, ("stop",))
        except Exception:
            pass
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for process in processes:
        process.join(timeout=1.0)
    for process in processes:
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join(timeout=1.0)


class WorkerPool:
    """A persistent pool of configuration worker processes.

    Prefers the ``fork`` start method (workers inherit the registry at
    no serialisation cost); ``start_method`` (or the
    ``ENGAGE_CONFIG_START_METHOD`` environment variable) selects
    ``spawn``/``forkserver`` explicitly, where the registry and options
    are pickled once per worker.  Workers are daemonic and additionally
    reaped by a GC finalizer, so an unclosed pool cannot outlive its
    owner.
    """

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        *,
        workers: int = 0,
        encoding: ExactlyOneEncoding = ExactlyOneEncoding.PAIRWISE,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        #: The registry mutation counter the workers were built from;
        #: owners recycle the pool when the parent registry moves on.
        self.registry_version = registry.version
        if start_method is None:
            start_method = os.environ.get(START_METHOD_ENV) or None
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else None
        context = multiprocessing.get_context(start_method)
        self.start_method = context.get_start_method()
        self._conns = []
        self._processes = []
        for worker_index in range(self.workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, worker_index, encoding),
                daemon=True,
                name=f"engage-config-worker-{worker_index}",
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        #: Fingerprints whose components every worker has been sent.
        self._seeded: set[str] = set()
        #: Sticky (fingerprint -> {component index -> worker}) affinity,
        #: so session traffic keeps hitting the worker whose caches are
        #: warm for that component.
        self._assignments: dict[str, dict[int, int]] = {}
        #: Wire accounting of the most recent :meth:`run_components`.
        self.last_wire = WireStats()
        self.closed = False
        self._finalizer = weakref.finalize(
            self, _shutdown, list(self._processes), list(self._conns)
        )

    # -- Dispatch --------------------------------------------------------

    def run_components(
        self,
        components: list[GraphComponent],
        *,
        fingerprint: str = "",
        keep: bool = False,
        force: Iterable[int] = (),
        on_outcome: Optional[Callable[[ComponentOutcome], None]] = None,
    ) -> list[ComponentOutcome]:
        """Run every component and return outcomes in index order.

        With ``keep`` the workers cache encoding + solver under
        ``fingerprint`` (the session path); already-seeded fingerprints
        send bare indexes instead of re-pickling the component graphs.
        ``force`` lists component indexes that must ship a full model
        even if the worker believes it unchanged (the parent lost its
        decode cache for them).

        ``on_outcome`` is the streaming hook: it is invoked once per
        *satisfiable* outcome in arrival order, while other components
        are still solving -- the caller decodes/propagates there to
        overlap parent CPU with worker CPU.  The hook must be idempotent
        per component index (the rare ``"need"`` self-heal re-dispatches
        the batch); an exception it raises is captured as that
        component's ``"error"`` outcome, preserving the lowest-index
        failure semantics of the serial pipeline.
        """
        if self.closed:
            raise ConfigurationError("the worker pool is closed")
        if not components:
            self.last_wire = WireStats()
            return []
        wire = WireStats()
        reuse = keep and fingerprint in self._seeded
        outcomes = self._dispatch(
            components, fingerprint, keep, reuse, frozenset(force),
            on_outcome, wire,
        )
        if keep and any(o.status == "need" for o in outcomes):
            # A worker lost its cache (cannot happen in the mirrored
            # parent/worker lifecycle, but self-heal rather than fail).
            self._seeded.discard(fingerprint)
            outcomes = self._dispatch(
                components, fingerprint, keep, False, frozenset(force),
                on_outcome, wire,
            )
        if keep:
            self._seeded.add(fingerprint)
        self.last_wire = wire
        return outcomes

    def _assignment(
        self, components: list[GraphComponent], fingerprint: str, keep: bool
    ) -> dict[int, int]:
        """The LPT placement, sticky per fingerprint on the session path."""
        if keep:
            cached = self._assignments.get(fingerprint)
            if cached is not None and all(
                component.index in cached for component in components
            ):
                return cached
        sizes = [component.nodes for component in components]
        placed = lpt_assignment(sizes, self.workers)
        assignment = {
            component.index: placed[position]
            for position, component in enumerate(components)
        }
        if keep:
            self._assignments[fingerprint] = assignment
        return assignment

    def _dispatch(
        self, components, fingerprint, keep, reuse, force, on_outcome, wire
    ) -> list[ComponentOutcome]:
        assignment = self._assignment(components, fingerprint, keep)
        batches: list[list[tuple[int, Any]]] = [
            [] for _ in range(self.workers)
        ]
        for component in components:
            payload = None if reuse else component
            batches[assignment[component.index]].append(
                (component.index, payload)
            )

        started = time.perf_counter()
        expected: dict[int, int] = {}
        for worker_index, batch in enumerate(batches):
            if not batch:
                continue
            try:
                wire.request_bytes += _send_frame(
                    self._conns[worker_index],
                    ("run", fingerprint, keep, batch, force),
                )
            except (BrokenPipeError, OSError):
                self._die(worker_index, assignment, received=())
            expected[worker_index] = len(batch)
        wire.dispatch_ms += (time.perf_counter() - started) * 1000.0

        conn_to_worker = {
            self._conns[worker_index]: worker_index
            for worker_index in expected
        }
        outcomes: dict[int, ComponentOutcome] = {}
        while expected:
            tick = time.perf_counter()
            ready = multiprocessing.connection.wait(list(conn_to_worker))
            wire.recv_wait_ms += (time.perf_counter() - tick) * 1000.0
            for conn in ready:
                worker_index = conn_to_worker[conn]
                try:
                    raw = conn.recv_bytes()
                except (EOFError, OSError):
                    self._die(worker_index, assignment, received=outcomes)
                wire.reply_frames += 1
                wire.reply_bytes += len(raw)
                wire.largest_reply_bytes = max(
                    wire.largest_reply_bytes, len(raw)
                )
                outcome = self._unpack_reply(
                    pickle.loads(raw), assignment,
                    (time.perf_counter() - started) * 1000.0,
                )
                outcomes[outcome.index] = outcome
                expected[worker_index] -= 1
                if expected[worker_index] == 0:
                    del expected[worker_index]
                    del conn_to_worker[conn]
                if outcome.status == "sat" and on_outcome is not None:
                    try:
                        on_outcome(outcome)
                    except Exception as exc:
                        # Parent-side decode/propagate/typecheck failed:
                        # record it and keep draining, so the caller can
                        # still pick the lowest-index failure (the one
                        # the serial pipeline would hit first).
                        outcome.status = "error"
                        outcome.error = exc
        return sorted(outcomes.values(), key=lambda outcome: outcome.index)

    @staticmethod
    def _unpack_reply(
        frame: tuple, assignment: dict[int, int], recv_ms: float
    ) -> ComponentOutcome:
        (index, status, flags, model, constraint_stats, solver_stats,
         encode_ms, solve_ms, error, tb) = frame
        return ComponentOutcome(
            index=index,
            status=status,
            worker=assignment.get(index, -1),
            model=model,
            constraint_stats=(
                ConstraintStats(*constraint_stats)
                if constraint_stats is not None else None
            ),
            solver_stats=(
                _unpack_solver_stats(solver_stats)
                if solver_stats is not None else None
            ),
            encode_ms=encode_ms,
            solve_ms=solve_ms,
            recv_ms=recv_ms,
            encoded=bool(flags & ENCODED),
            solver_reused=bool(flags & SOLVER_REUSED),
            model_unchanged=bool(flags & MODEL_UNCHANGED),
            error=error,
            traceback=tb,
        )

    def _die(self, worker_index: int, assignment, received) -> None:
        """A worker vanished mid-round: recycle the pool (the surviving
        pipes still hold undrained replies, so it can never be reused)
        and report exactly which components were in flight."""
        in_flight = sorted(set(assignment) - set(received))
        self.close()
        raise ConfigurationError(
            f"configuration worker {worker_index} exited unexpectedly; "
            f"components in flight: {in_flight}; the worker pool was "
            "recycled -- the next configure call starts a fresh pool"
        ) from None

    # -- Cache hygiene ---------------------------------------------------

    def seeded(self, fingerprint: str) -> bool:
        return fingerprint in self._seeded

    def evict(self, fingerprint: str) -> None:
        """Drop the workers' caches for one fingerprint (LRU eviction)."""
        if self.closed or fingerprint not in self._seeded:
            return
        self._seeded.discard(fingerprint)
        self._assignments.pop(fingerprint, None)
        for worker_index in range(self.workers):
            self._send(worker_index, ("evict", fingerprint))

    def flush(self) -> None:
        """Drop every worker-side cache."""
        if self.closed:
            return
        self._seeded.clear()
        self._assignments.clear()
        for worker_index in range(self.workers):
            self._send(worker_index, ("flush",))

    def _send(self, worker_index: int, message: tuple) -> None:
        try:
            _send_frame(self._conns[worker_index], message)
        except (BrokenPipeError, OSError):
            raise ConfigurationError(
                f"configuration worker {worker_index} is gone (broken pipe)"
            ) from None

    # -- Lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Stop and reap every worker (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self._finalizer.detach()
        _shutdown(self._processes, self._conns)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
