"""Hypergraph generation: the ``GraphGen(R, I)`` worklist algorithm (S4).

Nodes are resource instances; hyperedges represent dependencies.  The
algorithm seeds the graph with the partial installation specification's
instances, then iteratively processes instances: abstract dependency
targets are lowered to their concrete frontier, each disjunct is matched
against an existing compatible node (subtype, and same machine for
environment dependencies) or materialised as a new node, and a hyperedge
with one target per disjunct is recorded (Lemma 1).

The paper's conservative placement rules are followed: new instances from
environment *and* peer dependencies live on the dependent's machine
("unless explicitly specified, a peer dependency is deployed at the same
machine as the machine of its dependent").
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.core.errors import (
    ConfigurationError,
    MissingInsideError,
    SpecError,
)
from repro.core.instances import PartialInstallSpec
from repro.core.keys import ResourceKey
from repro.core.registry import ResourceTypeRegistry
from repro.core.resource_type import (
    Dependency,
    DependencyAlternative,
    DependencyKind,
)


@dataclass
class GraphNode:
    """A (concrete) resource instance under construction."""

    instance_id: str
    key: ResourceKey
    from_partial: bool = False
    inside_id: Optional[str] = None
    explicit_config: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        marker = " *" if self.from_partial else ""
        return f"{self.instance_id}: {self.key}{marker}"


@dataclass
class HyperEdge:
    """A dependency hyperedge: one source, one target per disjunct.

    ``alternatives[i]`` is the (lowered) dependency alternative satisfied
    by ``targets[i]`` -- it carries the port mappings used during value
    propagation if that disjunct is selected.
    """

    source_id: str
    kind: DependencyKind
    targets: tuple[str, ...]
    alternatives: tuple[DependencyAlternative, ...]

    def __post_init__(self) -> None:
        if len(self.targets) != len(self.alternatives):
            raise ConfigurationError(
                "hyperedge targets and alternatives must align"
            )

    def __str__(self) -> str:
        targets = ", ".join(self.targets)
        return f"{self.source_id} --{self.kind.value}--> {{{targets}}}"


class ResourceGraph:
    """The directed hypergraph produced by :func:`generate_graph`."""

    def __init__(self) -> None:
        self._nodes: dict[str, GraphNode] = {}
        self._edges: list[HyperEdge] = []
        self._ids_by_slug: dict[str, int] = {}
        #: Insertion-ordered node buckets per exact key, so candidate
        #: lookups only pay a subtype test per *distinct* key.
        self._nodes_by_key: dict[ResourceKey, list[GraphNode]] = {}
        #: instance id -> machine id.  Inside links are fixed at node
        #: creation, so the walk result never changes.
        self._machine_cache: dict[str, str] = {}
        #: (machine id, exact key) -> nodes, filled lazily from
        #: :attr:`_unbucketed` so machine chains can complete before the
        #: first placement query forces the walk.
        self._machine_buckets: dict[tuple[str, ResourceKey], list[GraphNode]] = {}
        self._unbucketed: deque[GraphNode] = deque()

    # -- Nodes ---------------------------------------------------------------

    def add_node(self, node: GraphNode) -> None:
        if node.instance_id in self._nodes:
            raise ConfigurationError(f"duplicate node id: {node.instance_id}")
        self._nodes[node.instance_id] = node
        self._nodes_by_key.setdefault(node.key, []).append(node)
        self._unbucketed.append(node)

    def node(self, instance_id: str) -> GraphNode:
        try:
            return self._nodes[instance_id]
        except KeyError:
            raise ConfigurationError(f"no node {instance_id!r}") from None

    def nodes(self) -> list[GraphNode]:
        return list(self._nodes.values())

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def fresh_id(self, key: ResourceKey) -> str:
        """A deterministic, human-readable id for a generated instance."""
        slug = re.sub(r"[^a-z0-9]+", "_", key.name.lower()).strip("_")
        count = self._ids_by_slug.get(slug, 0)
        self._ids_by_slug[slug] = count + 1
        candidate = slug if count == 0 else f"{slug}_{count + 1}"
        while candidate in self._nodes:
            count += 1
            self._ids_by_slug[slug] = count + 1
            candidate = f"{slug}_{count + 1}"
        return candidate

    # -- Edges ---------------------------------------------------------------

    def add_edge(self, edge: HyperEdge) -> None:
        self._edges.append(edge)

    def edges(self) -> list[HyperEdge]:
        return list(self._edges)

    def edges_from(self, instance_id: str) -> list[HyperEdge]:
        return [e for e in self._edges if e.source_id == instance_id]

    def nodes_matching(
        self, registry: ResourceTypeRegistry, key: ResourceKey
    ) -> Iterable[GraphNode]:
        """All nodes whose key subtypes ``key``, via the per-key index."""
        for node_key, bucket in self._nodes_by_key.items():
            if registry.is_subtype(node_key, key):
                yield from bucket

    def nodes_matching_on(
        self,
        registry: ResourceTypeRegistry,
        key: ResourceKey,
        machine_id: str,
    ) -> Iterable[GraphNode]:
        """Like :meth:`nodes_matching`, restricted to one machine.

        Served from per-(machine, key) buckets, so a placement query
        pays for the candidates on *its* machine rather than for every
        same-key node in a fleet-sized graph.
        """
        while self._unbucketed:
            node = self._unbucketed.popleft()
            machine = self.machine_of(node.instance_id)
            self._machine_buckets.setdefault(
                (machine, node.key), []
            ).append(node)
        for node_key in self._nodes_by_key:
            if registry.is_subtype(node_key, key):
                bucket = self._machine_buckets.get((machine_id, node_key))
                if bucket:
                    yield from bucket

    # -- Machine context ------------------------------------------------------

    def machine_of(self, instance_id: str) -> str:
        """Follow inside links to the physical machine (S3.1)."""
        cache = self._machine_cache
        chain: list[str] = []
        seen: set[str] = set()
        current = self.node(instance_id)
        while True:
            hit = cache.get(current.instance_id)
            if hit is not None:
                machine = hit
                break
            if current.inside_id is None:
                machine = current.instance_id
                break
            if current.instance_id in seen:
                raise ConfigurationError(
                    f"inside cycle at node {current.instance_id}"
                )
            seen.add(current.instance_id)
            chain.append(current.instance_id)
            current = self.node(current.inside_id)
        for walked in chain:
            cache[walked] = machine
        return machine

    def nodes_on_machine(self, machine_id: str) -> list[GraphNode]:
        return [
            node
            for node in self.nodes()
            if self.machine_of(node.instance_id) == machine_id
        ]


def lower_alternatives(
    registry: ResourceTypeRegistry, dependency: Dependency
) -> list[DependencyAlternative]:
    """Lower a dependency's alternatives to concrete keys.

    Abstract keys are replaced by their concrete frontier (S4); each
    frontier member inherits the abstract alternative's port mappings
    (sound because frontier members subtype the abstract target, hence
    declare at least its output ports).
    """
    lowered: list[DependencyAlternative] = []
    seen: set[ResourceKey] = set()
    for alt in dependency.alternatives:
        resource_type = registry.effective(alt.key)
        if resource_type.abstract:
            frontier = registry.concrete_frontier(alt.key)
        else:
            frontier = [alt.key]
        for key in frontier:
            if key not in seen:
                seen.add(key)
                lowered.append(
                    DependencyAlternative(
                        key, alt.port_mapping, alt.reverse_mapping
                    )
                )
    return lowered


def generate_graph(
    registry: ResourceTypeRegistry,
    partial: PartialInstallSpec,
    *,
    peer_policy: str = "colocate",
) -> ResourceGraph:
    """The ``GraphGen(R, I)`` worklist algorithm.

    ``peer_policy`` governs unmatched peer dependencies: ``"colocate"``
    (the paper's conservative rule) materialises the peer on the
    dependent's machine; ``"error"`` refuses, forcing the user to place
    every shared service explicitly -- useful in production topologies
    where accidentally co-locating a database would be a mistake.
    """
    if peer_policy not in ("colocate", "error"):
        raise ConfigurationError(f"unknown peer policy: {peer_policy!r}")
    graph = ResourceGraph()
    worklist: deque[str] = deque()

    # Step 1: a node per partial instance.
    for instance in partial:
        resource_type = registry.effective(instance.key)
        if resource_type.abstract:
            raise SpecError(
                f"partial spec instantiates abstract type {instance.key} "
                f"(instance {instance.id!r})"
            )
        graph.add_node(
            GraphNode(
                instance_id=instance.id,
                key=instance.key,
                from_partial=True,
                inside_id=instance.inside_id,
                explicit_config=dict(instance.config),
            )
        )
        worklist.append(instance.id)

    # Validate partial inside references before processing.
    for instance in partial:
        if instance.inside_id is not None and instance.inside_id not in graph:
            raise SpecError(
                f"instance {instance.id!r} is inside unknown instance "
                f"{instance.inside_id!r}"
            )

    # Step 2: process until the worklist is empty.
    while worklist:
        instance_id = worklist.popleft()
        _process_node(registry, graph, instance_id, worklist, peer_policy)

    return graph


def _process_node(
    registry: ResourceTypeRegistry,
    graph: ResourceGraph,
    instance_id: str,
    worklist: deque[str],
    peer_policy: str,
) -> None:
    node = graph.node(instance_id)
    resource_type = registry.effective(node.key)

    # Inside dependency: must already be resolved (the system does not
    # generate new machines automatically -- S4).
    if resource_type.inside is not None:
        if node.inside_id is None:
            raise MissingInsideError(
                f"instance {instance_id!r} of {node.key} does not resolve "
                "its inside dependency"
            )
        container = graph.node(node.inside_id)
        lowered = lower_alternatives(registry, resource_type.inside)
        match = _matching_alternative(registry, container.key, lowered)
        if match is None:
            raise ConfigurationError(
                f"instance {instance_id!r}: container {container.key} does "
                f"not satisfy inside dependency "
                f"{[str(a.key) for a in lowered]}"
            )
        graph.add_edge(
            HyperEdge(
                source_id=instance_id,
                kind=DependencyKind.INSIDE,
                targets=(container.instance_id,),
                alternatives=(match,),
            )
        )
    elif node.inside_id is not None:
        raise SpecError(
            f"instance {instance_id!r} of machine type {node.key} must not "
            "have a container"
        )

    machine_id = graph.machine_of(instance_id)

    for dependency in resource_type.environment:
        _process_hyperedge(
            registry, graph, node, dependency, machine_id, worklist,
            same_machine=True, peer_policy=peer_policy,
        )
    for dependency in resource_type.peers:
        _process_hyperedge(
            registry, graph, node, dependency, machine_id, worklist,
            same_machine=False, peer_policy=peer_policy,
        )


def _matching_alternative(
    registry: ResourceTypeRegistry,
    key: ResourceKey,
    alternatives: Iterable[DependencyAlternative],
) -> Optional[DependencyAlternative]:
    """The first alternative whose key ``key`` subtypes, if any."""
    for alt in alternatives:
        if registry.is_subtype(key, alt.key):
            return alt
    return None


def _process_hyperedge(
    registry: ResourceTypeRegistry,
    graph: ResourceGraph,
    node: GraphNode,
    dependency: Dependency,
    machine_id: str,
    worklist: deque[str],
    *,
    same_machine: bool,
    peer_policy: str,
) -> None:
    lowered = lower_alternatives(registry, dependency)
    targets: list[str] = []
    alternatives: list[DependencyAlternative] = []
    for alt in lowered:
        target_id = _find_existing(
            registry, graph, alt.key,
            machine_id if same_machine else None,
            exclude_id=node.instance_id,
            prefer_machine_id=None if same_machine else machine_id,
        )
        if target_id is None:
            if not same_machine and peer_policy == "error":
                raise ConfigurationError(
                    f"peer dependency of {node.instance_id!r} on "
                    f"{alt.key} has no matching instance, and the "
                    "peer policy forbids materialising one"
                )
            target_id = _materialise(
                registry, graph, alt.key, machine_id, worklist
            )
        targets.append(target_id)
        alternatives.append(alt)
    graph.add_edge(
        HyperEdge(
            source_id=node.instance_id,
            kind=dependency.kind,
            targets=tuple(targets),
            alternatives=tuple(alternatives),
        )
    )


def _find_existing(
    registry: ResourceTypeRegistry,
    graph: ResourceGraph,
    key: ResourceKey,
    machine_id: Optional[str],
    *,
    exclude_id: str,
    prefer_machine_id: Optional[str] = None,
) -> Optional[str]:
    """An existing node whose key subtypes ``key`` (and lives on
    ``machine_id`` when given), preferring partial-spec nodes.  Among
    equally-pinned candidates, ``prefer_machine_id`` (the dependent's
    machine, for peer dependencies) breaks ties towards co-located
    instances -- the paper's conservative placement rule, and what keeps
    per-replica pinned services attached to their own machine group in
    fleet topologies.  The depending node itself is excluded -- a
    resource cannot satisfy its own dependency."""
    best: Optional[GraphNode] = None
    if machine_id is not None:
        # Same-machine requirement: only this machine's bucket can match,
        # and the preference term is constant across it.
        short_rank: Optional[tuple[bool, str]] = None
        for node in graph.nodes_matching_on(registry, key, machine_id):
            if node.instance_id == exclude_id:
                continue
            rank = (not node.from_partial, node.instance_id)
            if short_rank is None or rank < short_rank:
                best, short_rank = node, rank
        return best.instance_id if best is not None else None
    if prefer_machine_id is not None:
        # A pinned candidate on the dependent's machine has the best
        # possible rank class; the lowest id among those wins outright,
        # without scanning the other machines' same-key nodes.
        for node in graph.nodes_matching_on(
            registry, key, prefer_machine_id
        ):
            if node.instance_id == exclude_id or not node.from_partial:
                continue
            if best is None or node.instance_id < best.instance_id:
                best = node
        if best is not None:
            return best.instance_id
    best_rank: Optional[tuple[bool, bool, str]] = None
    for node in graph.nodes_matching(registry, key):
        if node.instance_id == exclude_id:
            continue
        rank = (
            not node.from_partial,
            prefer_machine_id is not None
            and graph.machine_of(node.instance_id) != prefer_machine_id,
            node.instance_id,
        )
        if best_rank is None or rank < best_rank:
            best, best_rank = node, rank
    return best.instance_id if best is not None else None


def _materialise(
    registry: ResourceTypeRegistry,
    graph: ResourceGraph,
    key: ResourceKey,
    machine_id: str,
    worklist: deque[str],
) -> str:
    """Create a new instance of ``key`` on ``machine_id`` (S4: new
    instances conservatively reside on the dependent's machine)."""
    resource_type = registry.effective(key)
    inside_id: Optional[str] = None
    if resource_type.inside is not None:
        lowered = lower_alternatives(registry, resource_type.inside)
        machine_node = graph.node(machine_id)
        if _matching_alternative(registry, machine_node.key, lowered) is not None:
            inside_id = machine_id
        else:
            # The container is not the machine itself: look for a
            # compatible container already on the machine.
            for candidate in graph.nodes_on_machine(machine_id):
                if _matching_alternative(registry, candidate.key, lowered):
                    inside_id = candidate.instance_id
                    break
            if inside_id is None:
                raise ConfigurationError(
                    f"cannot place new instance of {key}: no compatible "
                    f"container on machine {machine_id!r} (needs one of "
                    f"{[str(a.key) for a in lowered]})"
                )
    instance_id = graph.fresh_id(key)
    graph.add_node(
        GraphNode(instance_id=instance_id, key=key, inside_id=inside_id)
    )
    worklist.append(instance_id)
    return instance_id
