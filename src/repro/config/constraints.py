"""Constraint generation from the resource hypergraph (S4, Theorem 1).

Atomic propositions are ``rsrc(id)`` facts about resource-instance nodes.
Two constraint families are emitted:

1. a unit fact ``rsrc(id)`` for every instance the partial installation
   specification mentions, and
2. for each hyperedge with source ``v`` and targets ``v1..vn``::

       rsrc(v) -> (+){rsrc(v1), ..., rsrc(vn)}

   where ``(+)S`` is the exactly-one predicate.  Inside edges are the
   single-target case, which degenerates to the implication
   ``rsrc(v) -> rsrc(v')`` (the "final five" constraints of the S2
   example).

Theorem 1: a full installation specification extending the partial one
exists iff the conjunction is satisfiable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.hypergraph import ResourceGraph
from repro.sat.cnf import CnfFormula
from repro.sat.encodings import ExactlyOneEncoding, implies_exactly_one


@dataclass
class ConstraintStats:
    """Sizes reported by the E12 encoding ablation."""

    variables: int
    clauses: int
    facts: int
    hyperedges: int


def generate_constraints(
    graph: ResourceGraph,
    encoding: ExactlyOneEncoding = ExactlyOneEncoding.PAIRWISE,
    *,
    facts_as_assumptions: bool = False,
) -> tuple[CnfFormula, ConstraintStats]:
    """Build ``Generate(R, I)`` as a CNF formula over node-id variables.

    With ``facts_as_assumptions`` the family-1 unit facts are *omitted*
    from the clause database; callers pass the corresponding literals to
    ``solve(assumptions=...)`` instead (see :func:`fact_literals`).  The
    clause database then encodes only the graph's dependency structure,
    so it can be kept in a long-lived incremental solver and queried
    under different pinned-instance sets -- the mechanism behind both
    unsat-core shrinking (:mod:`repro.config.explain`) and warm
    configuration sessions (:mod:`repro.config.session`).
    """
    formula = CnfFormula()
    facts = 0

    # Allocate variables in deterministic node order.
    for node in graph.nodes():
        formula.var(node.instance_id)

    # Family 1: partial-spec instances must deploy.
    for node in graph.nodes():
        if node.from_partial:
            facts += 1
            if not facts_as_assumptions:
                formula.add_fact(formula.var(node.instance_id))

    # Family 2: dependency hyperedges.
    for edge in graph.edges():
        source = formula.var(edge.source_id)
        targets = [formula.var(t) for t in edge.targets]
        if len(targets) == 1:
            formula.add_implies(source, targets[0])
        else:
            implies_exactly_one(formula, source, targets, encoding)

    stats = ConstraintStats(
        variables=formula.num_vars,
        clauses=formula.num_clauses,
        facts=facts,
        hyperedges=len(graph.edges()),
    )
    return formula, stats


def fact_literals(graph: ResourceGraph, formula: CnfFormula) -> dict[str, int]:
    """The assumption literal asserting ``rsrc(id)`` for every pinned node.

    Companion to ``generate_constraints(..., facts_as_assumptions=True)``.
    """
    return {
        node.instance_id: formula.var(node.instance_id)
        for node in graph.nodes()
        if node.from_partial
    }


def selected_nodes(
    graph: ResourceGraph, model: dict[str, bool]
) -> tuple[set[str], dict[tuple[str, int], str]]:
    """Decode a model into the deployed node set and disjunct choices.

    A satisfying assignment may set variables of nodes that nothing
    selected depends on (SAT solvers assign every variable); we therefore
    take the *closure* of the partial-spec nodes under chosen hyperedge
    targets instead of trusting raw truth values.

    Returns the set of deployed node ids and, for every (source id, edge
    index among that source's edges) pair, the chosen target id.
    """
    deployed: set[str] = set()
    choices: dict[tuple[str, int], str] = {}
    frontier = [n.instance_id for n in graph.nodes() if n.from_partial]

    while frontier:
        current = frontier.pop()
        if current in deployed:
            continue
        deployed.add(current)
        for index, edge in enumerate(graph.edges_from(current)):
            chosen = [t for t in edge.targets if model.get(t, False)]
            if len(edge.targets) == 1:
                target = edge.targets[0]
            elif len(chosen) >= 1:
                # Exactly-one holds under rsrc(current); defensive pick of
                # the first true target in declaration order.
                target = next(t for t in edge.targets if model.get(t, False))
            else:
                raise AssertionError(
                    f"model selects no target for edge {edge} despite "
                    "satisfying the constraints"
                )
            choices[(current, index)] = target
            if target not in deployed:
                frontier.append(target)
    return deployed, choices
