"""Canonical structural fingerprints of partial installation specs.

:class:`~repro.config.session.ConfigurationSession` memoizes hypergraph
generation and CNF encoding per *structure* of the partial specification,
so the cache key must be:

* **order-insensitive** -- two specs listing the same instances in a
  different insertion order, or giving config-port dicts in a different
  key order, describe the same deployment and must hash equal;
* **semantics-sensitive** -- any difference that can change the expanded
  specification (a config-port value, a pinned resource key or version,
  a container link) must hash different.

Values are reduced to a type-tagged canonical form before hashing so
that ``1``, ``1.0``, ``True`` and ``"1"`` stay distinct and nested
dicts/lists are compared structurally.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.core.instances import PartialInstallSpec, PartialInstance


def _canonical_value(value: Any) -> object:
    """A hashable, order-insensitive, type-tagged form of a port value."""
    # bool before int: bool is an int subclass and must not collide.
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, int):
        return ("i", value)
    if isinstance(value, float):
        return ("f", repr(value))
    if isinstance(value, str):
        return ("s", value)
    if value is None:
        return ("n",)
    if isinstance(value, dict):
        return (
            "d",
            tuple(
                sorted(
                    (str(k), _canonical_value(v)) for k, v in value.items()
                )
            ),
        )
    if isinstance(value, (list, tuple)):
        return ("l", tuple(_canonical_value(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("S", tuple(sorted(repr(_canonical_value(v)) for v in value)))
    # Fall back to repr for exotic values; deterministic for the value
    # types the DSL/JSON layers produce.
    return ("r", type(value).__name__, repr(value))


def _canonical_instance(instance: PartialInstance) -> tuple:
    return (
        instance.id,
        instance.key.name,
        str(instance.key.version),
        instance.inside_id,
        _canonical_value(dict(instance.config)),
    )


def canonical_form(partial: PartialInstallSpec) -> tuple:
    """The spec as a sorted tuple of canonical instance tuples."""
    return tuple(
        sorted(_canonical_instance(instance) for instance in partial)
    )


def fingerprint_partial(partial: PartialInstallSpec) -> str:
    """A stable hex digest identifying the spec's structure."""
    digest = hashlib.sha256(repr(canonical_form(partial)).encode("utf-8"))
    return digest.hexdigest()
