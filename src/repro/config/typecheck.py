"""Static checking of full installation specifications (S3.3).

"Engage's type system can check the installation specification to make
sure all required dependencies are present in the correct physical
context and that each instance is correctly configured."  The checks:

* every instance's type is registered and concrete;
* inside links satisfy the type's inside dependency (subtype match);
* every environment dependency is satisfied by a link to a compatible
  instance **on the same machine** (the physical-context check);
* every peer dependency is satisfied by a link to a compatible instance
  anywhere;
* every input port holds exactly the value of the linked provider's
  output port under the port mapping in force;
* all port values inhabit their declared types;
* the link structure is acyclic.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import TypecheckError
from repro.core.instances import InstallSpec, ResourceInstance
from repro.core.registry import ResourceTypeRegistry
from repro.core.resource_type import Dependency, ResourceType
from repro.core.wellformed import collect_reverse_targets, is_reverse_target
from repro.config.hypergraph import lower_alternatives


def check_spec(
    registry: ResourceTypeRegistry, spec: InstallSpec
) -> None:
    """Raise :class:`TypecheckError` listing every problem found."""
    problems = spec_problems(registry, spec)
    if problems:
        raise TypecheckError(
            "installation specification fails static checking:\n  "
            + "\n  ".join(problems)
        )


def spec_problems(
    registry: ResourceTypeRegistry, spec: InstallSpec
) -> list[str]:
    """Return a list of static-checking problems (empty when clean)."""
    problems: list[str] = []

    # Acyclicity first: downstream checks need a meaningful structure.
    try:
        spec.topological_order()
    except Exception as exc:  # CycleError or SpecError
        problems.append(str(exc))
        return problems

    reverse_targets = collect_reverse_targets(registry)
    for instance in spec:
        problems.extend(
            _check_instance(registry, spec, instance, reverse_targets)
        )
    return problems


def _check_instance(
    registry: ResourceTypeRegistry,
    spec: InstallSpec,
    instance: ResourceInstance,
    reverse_targets: set,
) -> list[str]:
    problems: list[str] = []
    if not registry.has(instance.key):
        return [f"{instance.id}: unknown resource type {instance.key}"]
    resource_type = registry.effective(instance.key)
    if resource_type.abstract:
        return [f"{instance.id}: abstract type {instance.key} instantiated"]

    # Inside dependency.
    if resource_type.inside is not None:
        if instance.inside is None:
            problems.append(
                f"{instance.id}: missing inside link required by "
                f"{instance.key}"
            )
        else:
            problems.extend(
                _check_link_satisfies(
                    registry, spec, instance, instance.inside.target.id,
                    resource_type.inside, "inside",
                )
            )
    elif instance.inside is not None:
        problems.append(
            f"{instance.id}: machine type {instance.key} must not have an "
            "inside link"
        )

    # Environment dependencies: compatible target on the same machine.
    machine = instance.machine_id(spec)
    env_targets = [link.target.id for link in instance.environment]
    for dep in resource_type.environment:
        satisfied = False
        for target_id in env_targets:
            target = spec[target_id]
            if _link_matches(registry, target.key, dep):
                if target.machine_id(spec) != machine:
                    problems.append(
                        f"{instance.id}: environment dependency "
                        f"{dep} satisfied by {target_id} on a different "
                        f"machine ({target.machine_id(spec)} != {machine})"
                    )
                satisfied = True
                break
        if not satisfied:
            problems.append(
                f"{instance.id}: unsatisfied environment dependency {dep}"
            )

    # Peer dependencies: compatible target anywhere.
    peer_targets = [link.target.id for link in instance.peers]
    for dep in resource_type.peers:
        if not any(
            _link_matches(registry, spec[t].key, dep) for t in peer_targets
        ):
            problems.append(
                f"{instance.id}: unsatisfied peer dependency {dep}"
            )

    # Port-value flow: inputs equal provider outputs under the mappings.
    expected_inputs: dict[str, Any] = {}
    for link in instance.links():
        provider = spec[link.target.id]
        for output_name, input_name in link.port_mapping:
            if output_name not in provider.outputs:
                problems.append(
                    f"{instance.id}: link to {provider.id} maps missing "
                    f"output {output_name!r}"
                )
                continue
            expected_inputs[input_name] = provider.outputs[output_name]
    for name, expected in sorted(expected_inputs.items()):
        actual = instance.inputs.get(name)
        if actual != expected:
            problems.append(
                f"{instance.id}: input {name!r} holds {actual!r} but the "
                f"linked provider exports {expected!r}"
            )

    # Every declared input port is present and well-typed.
    for port in resource_type.input_ports:
        if port.name not in instance.inputs:
            if is_reverse_target(
                registry, reverse_targets, instance.key, port.name
            ):
                continue
            problems.append(
                f"{instance.id}: input port {port.name!r} has no value"
            )
            continue
        if not port.type.accepts(instance.inputs[port.name]):
            problems.append(
                f"{instance.id}: input {port.name!r} value "
                f"{instance.inputs[port.name]!r} does not inhabit "
                f"{port.type}"
            )
    for config_port in resource_type.config_ports:
        value = instance.config.get(config_port.name)
        if value is None or not config_port.port.type.accepts(value):
            problems.append(
                f"{instance.id}: config {config_port.name!r} value "
                f"{value!r} does not inhabit {config_port.port.type}"
            )
    for output_port in resource_type.output_ports:
        value = instance.outputs.get(output_port.name)
        if value is None or not output_port.port.type.accepts(value):
            problems.append(
                f"{instance.id}: output {output_port.name!r} value "
                f"{value!r} does not inhabit {output_port.port.type}"
            )
    return problems


def _check_link_satisfies(
    registry: ResourceTypeRegistry,
    spec: InstallSpec,
    instance: ResourceInstance,
    target_id: str,
    dep: Dependency,
    kind: str,
) -> list[str]:
    if target_id not in spec:
        return [f"{instance.id}: {kind} link to missing instance {target_id}"]
    target = spec[target_id]
    if not _link_matches(registry, target.key, dep):
        return [
            f"{instance.id}: {kind} link target {target.key} does not "
            f"satisfy {dep}"
        ]
    return []


def _link_matches(
    registry: ResourceTypeRegistry, key, dep: Dependency
) -> bool:
    lowered = lower_alternatives(registry, dep)
    return any(registry.is_subtype(key, alt.key) for alt in lowered)
