"""Port-value propagation (S4).

"Given this solution, we can also tie together the input and output ports
by traversing the resource instances in topological order of
dependencies, starting with the output ports of [the machines], and using
the definitions of output ports of preceding resource instances to get
values of input ports according to the port mappings specified in the
dependencies."

Static ports (S3.4) are handled in a pre-pass: static output values are
computable at instantiation time (constants or functions of static config
constants), which is what lets reverse mappings flow configuration
*against* the dependency direction without breaking the topological walk.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.errors import ConfigurationError, PortTypeError
from repro.core.instances import (
    DependencyLink,
    InstallSpec,
    InstanceRef,
    ResourceInstance,
)
from repro.core.ports import Binding, neutral_value
from repro.core.registry import ResourceTypeRegistry
from repro.core.resource_type import DependencyKind, ResourceType
from repro.core.values import PortEnv, Space
from repro.core.wellformed import collect_reverse_targets, is_reverse_target
from repro.config.hypergraph import GraphNode, HyperEdge, ResourceGraph


def propagate(
    registry: ResourceTypeRegistry,
    graph: ResourceGraph,
    deployed: set[str],
    choices: dict[tuple[str, int], str],
) -> InstallSpec:
    """Materialise the full installation specification.

    ``deployed``/``choices`` come from
    :func:`repro.config.constraints.selected_nodes`.
    """
    links = _build_links(graph, deployed, choices)

    # Skeleton spec used only for ordering.
    skeleton = InstallSpec(
        ResourceInstance(
            id=node_id,
            key=graph.node(node_id).key,
            inside=links[node_id]["inside"],
            environment=tuple(links[node_id]["environment"]),
            peers=tuple(links[node_id]["peers"]),
        )
        for node_id in sorted(deployed)
    )
    order = [instance.id for instance in skeleton.topological_order()]

    # Pre-pass: static output values, computable at instantiation time.
    static_outputs: dict[str, dict[str, Any]] = {}
    for node_id in order:
        node = graph.node(node_id)
        resource_type = registry.effective(node.key)
        static_outputs[node_id] = _evaluate_static_outputs(
            resource_type, node.explicit_config
        )

    # Reverse mappings: dependents push static outputs into providers.
    reverse_inputs: dict[str, dict[str, Any]] = {n: {} for n in deployed}
    for node_id in deployed:
        for link in _all_links(links[node_id]):
            for output_name, input_name in link.reverse_mapping:
                reverse_inputs[link.target.id][input_name] = (
                    static_outputs[node_id][output_name]
                )

    # Topological pass: inputs <- provider outputs; configs; outputs.
    reverse_targets = collect_reverse_targets(registry)
    instances: dict[str, ResourceInstance] = {}
    for node_id in order:
        node = graph.node(node_id)
        resource_type = registry.effective(node.key)
        inputs = dict(reverse_inputs[node_id])
        # Reverse-mappable inputs that no dependent filled take a neutral
        # value of their type ("no dependent pushed configuration").
        for port in resource_type.input_ports:
            if port.name not in inputs and is_reverse_target(
                registry, reverse_targets, node.key, port.name
            ):
                inputs[port.name] = neutral_value(port.type)
        for link in _all_links(links[node_id]):
            provider = instances[link.target.id]
            for output_name, input_name in link.port_mapping:
                if output_name not in provider.outputs:
                    raise ConfigurationError(
                        f"{node_id}: provider {provider.id} has no output "
                        f"{output_name!r}"
                    )
                inputs[input_name] = provider.outputs[output_name]
        config = _evaluate_configs(resource_type, inputs, node.explicit_config)
        outputs = _evaluate_outputs(resource_type, inputs, config)
        _typecheck_values(resource_type, node_id, inputs, config, outputs)
        instances[node_id] = ResourceInstance(
            id=node_id,
            key=node.key,
            config=config,
            inputs=inputs,
            outputs=outputs,
            inside=links[node_id]["inside"],
            environment=tuple(links[node_id]["environment"]),
            peers=tuple(links[node_id]["peers"]),
        )

    return InstallSpec(instances[node_id] for node_id in order)


def _build_links(
    graph: ResourceGraph,
    deployed: set[str],
    choices: dict[tuple[str, int], str],
) -> dict[str, dict[str, Any]]:
    """Resolve each deployed node's edges to concrete dependency links."""
    links: dict[str, dict[str, Any]] = {}
    for node_id in deployed:
        entry: dict[str, Any] = {
            "inside": None,
            "environment": [],
            "peers": [],
        }
        for index, edge in enumerate(graph.edges_from(node_id)):
            target_id = choices[(node_id, index)]
            position = edge.targets.index(target_id)
            alternative = edge.alternatives[position]
            link = DependencyLink(
                kind=edge.kind.value,
                target=InstanceRef(target_id, graph.node(target_id).key),
                port_mapping=alternative.port_mapping.entries,
                reverse_mapping=alternative.reverse_mapping.entries,
            )
            if edge.kind == DependencyKind.INSIDE:
                entry["inside"] = link
            elif edge.kind == DependencyKind.ENVIRONMENT:
                entry["environment"].append(link)
            else:
                entry["peers"].append(link)
        links[node_id] = entry
    return links


def _all_links(entry: dict[str, Any]) -> list[DependencyLink]:
    result: list[DependencyLink] = []
    if entry["inside"] is not None:
        result.append(entry["inside"])
    result.extend(entry["environment"])
    result.extend(entry["peers"])
    return result


def _evaluate_static_outputs(
    resource_type: ResourceType, explicit_config: dict[str, Any]
) -> dict[str, Any]:
    static_config: dict[str, Any] = {}
    for config_port in resource_type.config_ports:
        if config_port.port.binding == Binding.STATIC:
            value = explicit_config.get(
                config_port.name, config_port.default.evaluate(PortEnv())
            )
            static_config[config_port.name] = value
    env = PortEnv(inputs={}, configs=static_config)
    outputs: dict[str, Any] = {}
    for output_port in resource_type.output_ports:
        if output_port.port.binding == Binding.STATIC:
            outputs[output_port.name] = output_port.value.evaluate(env)
    return outputs


def _evaluate_configs(
    resource_type: ResourceType,
    inputs: dict[str, Any],
    explicit_config: dict[str, Any],
) -> dict[str, Any]:
    for name in explicit_config:
        resource_type.config_port(name)  # raises on unknown names
    env = PortEnv(inputs=inputs)
    config: dict[str, Any] = {}
    for config_port in resource_type.config_ports:
        if config_port.name in explicit_config:
            config[config_port.name] = explicit_config[config_port.name]
        else:
            config[config_port.name] = config_port.default.evaluate(env)
    return config


def _evaluate_outputs(
    resource_type: ResourceType,
    inputs: dict[str, Any],
    config: dict[str, Any],
) -> dict[str, Any]:
    env = PortEnv(inputs=inputs, configs=config)
    return {
        output_port.name: output_port.value.evaluate(env)
        for output_port in resource_type.output_ports
    }


def _typecheck_values(
    resource_type: ResourceType,
    node_id: str,
    inputs: dict[str, Any],
    config: dict[str, Any],
    outputs: dict[str, Any],
) -> None:
    for port in resource_type.input_ports:
        if port.name not in inputs:
            raise ConfigurationError(
                f"{node_id}: input port {port.name!r} was never filled"
            )
        _check(node_id, port, inputs[port.name])
    for config_port in resource_type.config_ports:
        _check(node_id, config_port.port, config[config_port.name])
    for output_port in resource_type.output_ports:
        _check(node_id, output_port.port, outputs[output_port.name])


def _check(node_id: str, port, value: Any) -> None:
    if value is None:
        raise ConfigurationError(
            f"{node_id}: port {port.name!r} has no value (no default and "
            "no explicit assignment)"
        )
    if not port.type.accepts(value):
        raise PortTypeError(
            f"{node_id}: value {value!r} does not inhabit type "
            f"{port.type} of port {port.name!r}"
        )
