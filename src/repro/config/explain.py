"""Unsatisfiability explanation.

Theorem 1 tells the user *whether* a partial installation specification
extends to a full one; when it does not, a bare "unsatisfiable" is a
poor error message.  This module computes a *minimal conflicting subset*
of the user's pinned instances -- a deletion-based minimal unsatisfiable
subset (MUS) over the partial-spec facts, using solver assumptions --
so errors read like "pinning both 'web' (Gunicorn 0.13) and 'opt0'
(Apache-HTTPD 2.2) violates the exactly-one web-server dependency of
'app'" rather than "no".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.instances import PartialInstallSpec
from repro.core.registry import ResourceTypeRegistry
from repro.config.constraints import fact_literals, generate_constraints
from repro.config.hypergraph import ResourceGraph, generate_graph
from repro.sat.cnf import CnfFormula
from repro.sat.solver import CdclSolver


@dataclass
class UnsatExplanation:
    """Why a partial installation specification has no extension."""

    #: A minimal set of pinned instance ids that cannot coexist.
    conflicting_ids: list[str]
    #: Hyperedges connecting the conflict (source id, target ids).
    related_edges: list[tuple[str, tuple[str, ...]]] = field(
        default_factory=list
    )

    def message(self, graph: Optional[ResourceGraph] = None) -> str:
        if not self.conflicting_ids:
            return (
                "the resource library itself admits no deployment of the "
                "requested components"
            )
        if graph is not None:
            named = [
                f"{iid!r} ({graph.node(iid).key})"
                for iid in self.conflicting_ids
            ]
        else:
            named = [repr(iid) for iid in self.conflicting_ids]
        lines = [
            "these pinned instances cannot be deployed together: "
            + ", ".join(named)
        ]
        for source, targets in self.related_edges:
            lines.append(
                f"  {source!r} requires exactly one of {list(targets)}"
            )
        return "\n".join(lines)


def _facts_as_assumptions(
    graph: ResourceGraph,
) -> tuple[CnfFormula, dict[str, int]]:
    """The constraint formula *without* the partial-spec unit facts; the
    facts become assumption literals instead."""
    formula, _stats = generate_constraints(graph, facts_as_assumptions=True)
    return formula, fact_literals(graph, formula)


def explain_unsat(
    registry: ResourceTypeRegistry,
    partial: PartialInstallSpec,
    *,
    partition: bool = False,
) -> Optional[UnsatExplanation]:
    """Explain why ``partial`` is unsatisfiable; None if it is fine.

    Runs a deletion-based MUS over the partial-spec facts: drop each
    pinned instance in turn and keep the drop whenever the rest is still
    unsatisfiable.  The survivors are a minimal conflicting subset.

    With ``partition`` the same deletion sweep is answered with one
    solver per connected component (the trial subset only changes inside
    the dropped fact's component, so every other component's verdict is
    cached).  Satisfiability decomposes over components, so each trial
    gets the same answer either way and the diagnosis is byte-identical.
    """
    graph = generate_graph(registry, partial)
    if partition:
        return _explain_partitioned(graph)
    formula, facts = _facts_as_assumptions(graph)

    # One incremental solver answers every subset query: the clause
    # database (and the clauses learned refuting earlier subsets) is
    # shared, each candidate subset is just a new assumption vector.
    solver = CdclSolver(formula)

    def satisfiable(kept: list[str]) -> bool:
        return solver.solve([facts[iid] for iid in kept])

    all_ids = sorted(facts)
    if satisfiable(all_ids):
        return None

    core = list(all_ids)
    for candidate in all_ids:
        trial = [iid for iid in core if iid != candidate]
        if not satisfiable(trial):
            core = trial  # still unsat without it: drop for good

    return _finish(graph, core)


def _explain_partitioned(graph: ResourceGraph) -> Optional[UnsatExplanation]:
    """The deletion MUS with per-component solvers (identical output).

    Mirrors the monolithic sweep candidate for candidate: a trial subset
    is unsatisfiable iff some component's slice of it is, and dropping a
    fact only changes its own component's slice -- so each trial costs
    one small solve (plus one re-solve when another component is already
    conflicting and the drop is kept).
    """
    from repro.config.partition import partition_graph

    parts = partition_graph(graph)
    solvers: list[CdclSolver] = []
    fact_maps: list[dict[str, int]] = []
    kept: list[list[str]] = []
    component_of: dict[str, int] = {}
    for component in parts.components:
        formula, facts = _facts_as_assumptions(component.graph)
        solvers.append(CdclSolver(formula))
        fact_maps.append(facts)
        kept.append(sorted(facts))
        for fact_id in facts:
            component_of[fact_id] = component.index

    def solve_component(index: int, fact_ids: list[str]) -> bool:
        return solvers[index].solve(
            [fact_maps[index][iid] for iid in fact_ids]
        )

    satisfiable = [
        solve_component(index, kept[index]) for index in range(len(kept))
    ]
    if all(satisfiable):
        return None

    all_ids = sorted(component_of)
    dropped: set[str] = set()
    for candidate in all_ids:
        if candidate in dropped:
            continue  # trial == current core: still unsat, nothing changes
        index = component_of[candidate]
        trial = [iid for iid in kept[index] if iid != candidate]
        if any(
            not ok for other, ok in enumerate(satisfiable) if other != index
        ):
            # Some other component already conflicts: the trial is
            # unsatisfiable no matter what, so the drop is kept; refresh
            # this component's verdict under its reduced fact set.
            kept[index] = trial
            satisfiable[index] = solve_component(index, trial)
            dropped.add(candidate)
        elif not solve_component(index, trial):
            kept[index] = trial
            satisfiable[index] = False
            dropped.add(candidate)

    core = [iid for iid in all_ids if iid not in dropped]
    return _finish(graph, core)


def _finish(graph: ResourceGraph, core: list[str]) -> UnsatExplanation:
    related: list[tuple[str, tuple[str, ...]]] = []
    core_set = set(core)
    for edge in graph.edges():
        if len(edge.targets) > 1 and core_set & set(edge.targets):
            related.append((edge.source_id, edge.targets))
    return UnsatExplanation(conflicting_ids=core, related_edges=related)


def explain_message(
    registry: ResourceTypeRegistry, partial: PartialInstallSpec
) -> Optional[str]:
    """The human-readable explanation, or None when satisfiable."""
    explanation = explain_unsat(registry, partial)
    if explanation is None:
        return None
    graph = generate_graph(registry, partial)
    return explanation.message(graph)
