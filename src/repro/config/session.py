"""Incremental configuration sessions (the warm-query fast path).

The paper's §6.2 evaluation -- and any deployment manager serving
repeated traffic -- runs *families* of near-identical configuration
queries against one fixed resource library: re-planning a deployment,
sweeping a configuration space, answering the same request for many
tenants.  :class:`ConfigurationEngine` treats every call as cold; this
module amortizes all per-query work that does not depend on fresh
input:

* registry **well-formedness** is verified once and memoized on the
  registry (invalidated when a type is registered);
* **hypergraph generation** is memoized per canonical structural
  fingerprint of the partial specification
  (:mod:`repro.config.fingerprint`);
* the **CNF encoding** is cached at the same key, with the family-1
  facts expressed as *assumption literals* rather than unit clauses, so
  the clause database encodes only graph structure;
* one **persistent incremental** :class:`~repro.sat.solver.CdclSolver`
  per cached entry answers every solve: learned clauses, VSIDS
  activities, and saved phases survive across calls, and each query is
  just a new assumption vector over the shared clause database;
* the **propagated specification** is memoized per decoded outcome -- a
  warm call that reproduces an already-verified (deployed, choices) pair
  reuses the frozen :class:`~repro.core.instances.ResourceInstance`
  values instead of re-running value propagation and the static
  re-check, wrapped in a fresh
  :class:`~repro.core.instances.InstallSpec` container so callers that
  mutate their spec (provisioning, upgrades) cannot corrupt the cache.

Results are bit-identical to per-call
:meth:`ConfigurationEngine.configure` output: the same full
specifications and deployed ids, with cache/timing metadata attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.instances import InstallSpec, PartialInstallSpec
from repro.core.registry import ResourceTypeRegistry
from repro.core.wellformed import assert_well_formed
from repro.config.constraints import (
    ConstraintStats,
    fact_literals,
    generate_constraints,
    selected_nodes,
)
from repro.core.errors import ConfigurationError
from repro.config.engine import (
    ConfigurationResult,
    PhaseTimings,
    SessionCacheInfo,
    _accumulate_constraint_stats,
    _accumulate_solver_stats,
    canonical_model,
    emit_config_trace,
    raise_unsatisfiable,
)
from repro.config.fingerprint import fingerprint_partial
from repro.config.hypergraph import ResourceGraph, generate_graph
from repro.config.partition import (
    ComponentStats,
    GraphComponent,
    Partition,
    PartitionInfo,
    merge_component_specs,
    partition_graph,
)
from repro.config.propagation import propagate
from repro.config.typecheck import check_spec
from repro.sat.cnf import CnfFormula
from repro.sat.encodings import ExactlyOneEncoding
from repro.sat.solver import CdclSolver, DpllSolver, SolverStats


@dataclass
class SessionStats:
    """Cumulative cache-hit/miss counters for one session."""

    configure_calls: int = 0
    graph_hits: int = 0
    graph_misses: int = 0
    cnf_hits: int = 0
    cnf_misses: int = 0
    solver_builds: int = 0
    solver_reuses: int = 0
    typecheck_runs: int = 0
    typecheck_skips: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.graph_hits + self.graph_misses
        return self.graph_hits / total if total else 0.0


class _Entry:
    """Everything cached for one (mode, partial-spec fingerprint) key."""

    __slots__ = (
        "graph", "formula", "constraint_stats", "assumptions", "solver",
        "canonical", "verified_specs", "partition", "components",
        "stats_ready", "decoded",
    )

    def __init__(
        self,
        graph: ResourceGraph,
        formula: Optional[CnfFormula],
        constraint_stats: ConstraintStats,
        assumptions: list[int],
    ) -> None:
        self.graph = graph
        self.formula = formula
        self.constraint_stats = constraint_stats
        self.assumptions = assumptions
        self.solver: Optional[CdclSolver] = None
        #: The deterministic-order model, computed once if this entry's
        #: solver ever conflicted (the assumptions are fixed per entry,
        #: so the canonical model never changes).
        self.canonical: Optional[dict[int, bool]] = None
        #: (deployed, choices) outcome -> the propagated (and, when
        #: enabled, typechecked) instances, in topological order.  The
        #: instances are frozen dataclasses, so reuse is safe; only the
        #: InstallSpec container is rebuilt per call.
        self.verified_specs: dict[tuple, tuple] = {}
        #: Partitioned-mode state: the component split of ``graph`` and
        #: one :class:`_ComponentEntry` per component (None/[] for
        #: monolithic entries).  Parallel-mode entries carry only the
        #: partition -- encodings and solvers live in the workers.
        self.partition: Optional[Partition] = None
        self.components: list[_ComponentEntry] = []
        #: Whether :attr:`constraint_stats` was filled from the first
        #: worker round-trip (parallel-mode entries only).
        self.stats_ready = False
        #: Parallel-mode decode cache: component index -> (named model,
        #: deployed frozenset, choices, propagated instance tuple).  A
        #: worker whose model repeats sends a bare ``MODEL_UNCHANGED``
        #: header and the parent re-serves this cache; component
        #: indexes *missing* here are forced to ship a full model.
        self.decoded: dict[int, tuple] = {}


class _ComponentEntry:
    """Cached encoding + persistent solver for one graph component."""

    __slots__ = (
        "component", "formula", "constraint_stats", "assumptions",
        "solver", "canonical", "encode_ms",
    )

    def __init__(
        self,
        component: GraphComponent,
        formula: CnfFormula,
        constraint_stats: ConstraintStats,
        assumptions: list[int],
        encode_ms: float,
    ) -> None:
        self.component = component
        self.formula = formula
        self.constraint_stats = constraint_stats
        self.assumptions = assumptions
        #: One-time encoding cost, reported on the miss call only.
        self.encode_ms = encode_ms
        self.solver: Optional[CdclSolver] = None
        self.canonical: Optional[dict[int, bool]] = None


class ConfigurationSession:
    """A long-lived, cache-backed front end to the configuration engine.

    Accepts the same options as :class:`ConfigurationEngine` and
    produces bit-identical results; see the module docstring for what
    is amortized across calls.  ``max_entries`` bounds the cache (least
    recently used entries are evicted, keeping memory flat under
    unbounded distinct-query traffic).
    """

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        *,
        encoding: ExactlyOneEncoding = ExactlyOneEncoding.PAIRWISE,
        solver: str = "cdcl",
        check_types: bool = True,
        verify_registry: bool = True,
        explain_unsat: bool = True,
        peer_policy: str = "colocate",
        partition: bool = False,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        max_entries: int = 1024,
        tracer=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if partition and solver == "dpll":
            raise ConfigurationError(
                "partitioned solving requires the cdcl solver (the DPLL "
                "ablation baseline has no canonical decomposition)"
            )
        if workers is not None and not partition:
            raise ConfigurationError(
                "parallel configuration (workers=...) requires "
                "partition=True"
            )
        self._registry = registry
        self._encoding = encoding
        self._solver = solver
        self._check_types = check_types
        self._verify_registry = verify_registry
        self._explain_unsat = explain_unsat
        self._peer_policy = peer_policy
        self._partition = partition
        self._workers = workers
        self._start_method = start_method
        self._pool = None
        self._max_entries = max_entries
        self._tracer = tracer
        #: Keyed by (mode, fingerprint) where mode is False (monolithic),
        #: True (in-process partitioned) or "parallel" (process pool):
        #: the modes cache different artifacts (one formula/solver, one
        #: per component, or worker-resident state plus the partition),
        #: so a mode flip must never serve another mode's entry.
        self._entries: dict[tuple, _Entry] = {}
        self.stats = SessionStats()
        if verify_registry:
            assert_well_formed(registry)
        self._registry_version = registry.version

    @property
    def registry(self) -> ResourceTypeRegistry:
        return self._registry

    def __len__(self) -> int:
        """Number of cached partial-spec structures."""
        return len(self._entries)

    def flush(self) -> None:
        """Drop every cached graph, formula, and solver (parent and
        worker side alike)."""
        self._entries.clear()
        if self._pool is not None:
            self._pool.flush()

    def close(self) -> None:
        """Shut down the worker pool, if one was spun up (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ConfigurationSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- Cache plumbing -------------------------------------------------

    def _revalidate(self) -> None:
        """Flush if the registry changed since the caches were built."""
        if self._registry.version == self._registry_version:
            return
        self.flush()
        # Workers hold a snapshot of the registry from pool creation;
        # a mutated registry makes that snapshot stale, so the pool is
        # recycled (the next parallel call re-forks fresh workers).
        self.close()
        self.stats.invalidations += 1
        if self._verify_registry:
            assert_well_formed(self._registry)
        self._registry_version = self._registry.version

    def _lookup(self, key: tuple) -> Optional[_Entry]:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._entries[key] = entry  # re-insert: LRU refresh
        return entry

    def _store(self, key: tuple, entry: _Entry) -> None:
        self._entries[key] = entry
        if len(self._entries) > self._max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            if oldest[0] == "parallel" and self._pool is not None:
                # Mirror the LRU eviction into the workers' caches.
                self._pool.evict(oldest[1])
            self.stats.evictions += 1

    def _ensure_pool(self, workers: int):
        """The persistent pool, recycled on size/registry changes."""
        from repro.config.parallel import WorkerPool, resolve_workers

        resolved = resolve_workers(workers)
        pool = self._pool
        if pool is not None and (
            pool.closed
            or pool.workers != resolved
            or pool.registry_version != self._registry.version
        ):
            pool.close()
            pool = None
        if pool is None:
            pool = WorkerPool(
                self._registry, workers=resolved, encoding=self._encoding,
                start_method=self._start_method,
            )
            self._pool = pool
        return pool

    # -- The pipeline ---------------------------------------------------

    def configure(
        self,
        partial: PartialInstallSpec,
        *,
        partition: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> ConfigurationResult:
        """Expand ``partial``, reusing every cache the session holds.

        Semantics match :meth:`ConfigurationEngine.configure`, including
        :class:`~repro.core.errors.UnsatisfiableError` on Theorem 1
        failures.  ``partition`` and ``workers`` override the session's
        configured modes for this call; the modes never share cache
        entries.  With ``workers`` (0 = one per core) the components are
        solved on the session's persistent process pool, and the warm
        per-component encodings and incremental solvers live inside the
        workers, keyed by the partial-spec fingerprint.
        """
        use_partition = self._partition if partition is None else partition
        use_workers = self._workers if workers is None else workers
        if use_partition and self._solver == "dpll":
            raise ConfigurationError(
                "partitioned solving requires the cdcl solver (the DPLL "
                "ablation baseline has no canonical decomposition)"
            )
        if use_workers is not None and not use_partition:
            raise ConfigurationError(
                "parallel configuration (workers=...) requires "
                "partition=True"
            )
        self._revalidate()
        self.stats.configure_calls += 1
        timings = PhaseTimings()
        cache = SessionCacheInfo(fingerprint=fingerprint_partial(partial))
        if use_workers is not None:
            return self._configure_parallel(
                partial, cache, timings, use_workers
            )
        key = (use_partition, cache.fingerprint)

        started = time.perf_counter()
        entry = self._lookup(key)
        if entry is not None:
            cache.graph_hit = True
            cache.cnf_hit = True
            self.stats.graph_hits += 1
            self.stats.cnf_hits += 1
        else:
            graph = generate_graph(
                self._registry, partial, peer_policy=self._peer_policy
            )
            self.stats.graph_misses += 1
            ticked = time.perf_counter()
            timings.graph_ms = (ticked - started) * 1000.0
            if use_partition:
                entry = self._build_partitioned_entry(graph, timings)
            else:
                formula, constraint_stats = generate_constraints(
                    graph, self._encoding, facts_as_assumptions=True
                )
                assumptions = sorted(fact_literals(graph, formula).values())
                entry = _Entry(graph, formula, constraint_stats, assumptions)
                timings.encode_ms = (time.perf_counter() - ticked) * 1000.0
            self.stats.cnf_misses += 1
            self._store(key, entry)

        if use_partition:
            return self._configure_partitioned(partial, entry, cache, timings)

        started = time.perf_counter()
        solved, model, solver_stats = self._solve(entry, cache)
        ticked = time.perf_counter()
        timings.solve_ms = (ticked - started) * 1000.0
        if not solved:
            raise_unsatisfiable(
                self._registry, partial, entry.graph,
                explain=self._explain_unsat,
            )

        named_model = {
            str(name): value
            for name, value in entry.formula.decode_model(model).items()
        }
        deployed, choices = selected_nodes(entry.graph, named_model)
        outcome = (frozenset(deployed), tuple(sorted(choices.items())))
        instances = entry.verified_specs.get(outcome)
        if instances is not None:
            spec = InstallSpec(instances)
            cache.typecheck_skipped = True
            self.stats.typecheck_skips += 1
        else:
            spec = propagate(self._registry, entry.graph, deployed, choices)
            if self._check_types:
                check_spec(self._registry, spec)
            entry.verified_specs[outcome] = tuple(spec)
            self.stats.typecheck_runs += 1
        timings.propagate_ms = (time.perf_counter() - ticked) * 1000.0
        emit_config_trace(self._tracer, timings, cache)
        return ConfigurationResult(
            spec=spec,
            graph=entry.graph,
            formula=entry.formula,
            model=named_model,
            constraint_stats=entry.constraint_stats,
            solver_stats=solver_stats,
            deployed_ids=deployed,
            timings=timings,
            cache=cache,
        )

    def _solve(self, entry: _Entry, cache: SessionCacheInfo):
        """Solve the entry's clause database under its assumptions.

        Returns ``(solved, model, solver_stats)``.  The CDCL solver's
        stats are *cumulative* across every call that hit this entry --
        ``solve_calls > 1`` is the proof of clause-database reuse.
        """
        if self._solver == "dpll":
            # The DPLL baseline has no incremental state worth keeping:
            # build it fresh from the cached formula (still skipping
            # graph generation and encoding).
            dpll = DpllSolver(entry.formula)
            self.stats.solver_builds += 1
            if not dpll.solve(entry.assumptions):
                return False, {}, dpll.stats
            return True, dpll.model(), dpll.stats
        if entry.solver is None:
            entry.solver = CdclSolver(entry.formula)
            self.stats.solver_builds += 1
        else:
            cache.solver_reused = True
            self.stats.solver_reuses += 1
        if not entry.solver.solve(entry.assumptions):
            return False, {}, entry.solver.stats
        if entry.solver.stats.conflicts == 0:
            # Conflict-free throughout its life: the persistent solver's
            # model IS the canonical static-order model (see
            # :func:`canonical_model`), at zero extra cost.
            return True, entry.solver.model(), entry.solver.stats
        if entry.canonical is None:
            entry.canonical = canonical_model(
                entry.formula, entry.solver, entry.assumptions
            )
        return True, entry.canonical, entry.solver.stats

    # -- The partitioned pipeline ---------------------------------------

    def _build_partitioned_entry(
        self, graph: ResourceGraph, timings: PhaseTimings
    ) -> _Entry:
        """Split ``graph`` and encode each component (the cache miss)."""
        ticked = time.perf_counter()
        parts = partition_graph(graph)
        started = time.perf_counter()
        timings.partition_ms = (started - ticked) * 1000.0
        aggregate = ConstraintStats(0, 0, 0, 0)
        entry = _Entry(graph, None, aggregate, [])
        entry.partition = parts
        for component in parts.components:
            tick = time.perf_counter()
            formula, constraint_stats = generate_constraints(
                component.graph, self._encoding, facts_as_assumptions=True
            )
            assumptions = sorted(
                fact_literals(component.graph, formula).values()
            )
            encode_ms = (time.perf_counter() - tick) * 1000.0
            entry.components.append(
                _ComponentEntry(
                    component, formula, constraint_stats, assumptions,
                    encode_ms,
                )
            )
            _accumulate_constraint_stats(aggregate, constraint_stats)
            timings.encode_ms += encode_ms
        return entry

    def _configure_partitioned(
        self,
        partial: PartialInstallSpec,
        entry: _Entry,
        cache: SessionCacheInfo,
        timings: PhaseTimings,
    ) -> ConfigurationResult:
        """Solve/decode each cached component and merge (warm path)."""
        info = PartitionInfo(partition_ms=timings.partition_ms)
        aggregate_solver = SolverStats(components=len(entry.components))
        named_model: dict[str, bool] = {}
        deployed: set[str] = set()
        choices: dict[tuple[str, int], str] = {}
        outcomes: list[tuple[set[str], dict[tuple[str, int], str]]] = []
        solve_ms: list[float] = []

        for comp in entry.components:
            tick = time.perf_counter()
            if comp.solver is None:
                comp.solver = CdclSolver(comp.formula)
                self.stats.solver_builds += 1
            else:
                cache.solver_reused = True
                self.stats.solver_reuses += 1
            if not comp.solver.solve(comp.assumptions):
                timings.solve_ms += (time.perf_counter() - tick) * 1000.0
                raise_unsatisfiable(
                    self._registry, partial, entry.graph,
                    explain=self._explain_unsat, partition=True,
                )
            if comp.solver.stats.conflicts == 0:
                model = comp.solver.model()
            else:
                if comp.canonical is None:
                    comp.canonical = canonical_model(
                        comp.formula, comp.solver, comp.assumptions
                    )
                model = comp.canonical
            named = {
                str(name): value
                for name, value in comp.formula.decode_model(model).items()
            }
            component_deployed, component_choices = selected_nodes(
                comp.component.graph, named
            )
            elapsed = (time.perf_counter() - tick) * 1000.0
            named_model.update(named)
            deployed |= component_deployed
            choices.update(component_choices)
            outcomes.append((component_deployed, component_choices))
            solve_ms.append(elapsed)
            timings.solve_ms += elapsed
            _accumulate_solver_stats(aggregate_solver, comp.solver.stats)

        ticked = time.perf_counter()
        outcome = (frozenset(deployed), tuple(sorted(choices.items())))
        instances = entry.verified_specs.get(outcome)
        propagate_ms = [0.0] * len(entry.components)
        if instances is not None:
            spec = InstallSpec(instances)
            cache.typecheck_skipped = True
            self.stats.typecheck_skips += 1
        else:
            specs: list[InstallSpec] = []
            for index, comp in enumerate(entry.components):
                tick = time.perf_counter()
                component_deployed, component_choices = outcomes[index]
                component_spec = propagate(
                    self._registry, comp.component.graph,
                    component_deployed, component_choices,
                )
                if self._check_types:
                    check_spec(self._registry, component_spec)
                specs.append(component_spec)
                propagate_ms[index] = (time.perf_counter() - tick) * 1000.0
            spec = merge_component_specs(specs)
            entry.verified_specs[outcome] = tuple(spec)
            self.stats.typecheck_runs += 1
        timings.propagate_ms = (time.perf_counter() - ticked) * 1000.0

        for index, comp in enumerate(entry.components):
            info.components.append(
                ComponentStats(
                    index=comp.component.index,
                    nodes=len(comp.component.graph),
                    edges=len(comp.component.graph.edges()),
                    pinned=len(comp.component.pinned),
                    encode_ms=0.0 if cache.cnf_hit else comp.encode_ms,
                    solve_ms=solve_ms[index],
                    propagate_ms=propagate_ms[index],
                    decisions=comp.solver.stats.decisions,
                    conflicts=comp.solver.stats.conflicts,
                )
            )
        emit_config_trace(self._tracer, timings, cache, partition=info)
        return ConfigurationResult(
            spec=spec,
            graph=entry.graph,
            formula=None,
            model=named_model,
            constraint_stats=entry.constraint_stats,
            solver_stats=aggregate_solver,
            deployed_ids=deployed,
            timings=timings,
            cache=cache,
            partition=info,
        )

    def reconfigure_components(
        self,
        partial: PartialInstallSpec,
        instance_ids: Iterable[str],
    ) -> InstallSpec:
        """Re-solve and re-propagate only the components containing
        ``instance_ids``; returns their merged full specification.

        This is the reconcile loop's goal-revalidation path: after a
        machine loss the controller re-derives just the affected slice
        of the goal and checks it still matches what it is about to
        redeploy.  The *cached full-graph partition* is what makes the
        result bit-identical to the matching slice of the full
        specification: generated node ids are numbered globally per
        graph, so configuring a smaller partial from scratch would
        renumber them.  Cold calls (no cached entry for ``partial``) run
        a full partitioned :meth:`configure` first.

        In-process partitioned mode only -- worker-resident solvers
        answer whole-fingerprint queries, not per-component ones.
        """
        wanted = set(instance_ids)
        if not wanted:
            raise ConfigurationError(
                "reconfigure_components needs at least one instance id"
            )
        if self._solver == "dpll":
            raise ConfigurationError(
                "partitioned solving requires the cdcl solver (the DPLL "
                "ablation baseline has no canonical decomposition)"
            )
        self._revalidate()
        key = (True, fingerprint_partial(partial))
        entry = self._lookup(key)
        if entry is None:
            self.configure(partial, partition=True, workers=None)
            entry = self._lookup(key)
            assert entry is not None  # configure() just stored it
        affected: list[_ComponentEntry] = []
        covered: set[str] = set()
        for comp in entry.components:
            hit = {iid for iid in wanted if iid in comp.component.graph}
            if hit:
                affected.append(comp)
                covered |= hit
        missing = wanted - covered
        if missing:
            raise ConfigurationError(
                "reconfigure_components: instances not in the configured "
                f"graph: {sorted(missing)}"
            )
        specs: list[InstallSpec] = []
        for comp in affected:
            if comp.solver is None:
                comp.solver = CdclSolver(comp.formula)
                self.stats.solver_builds += 1
            else:
                self.stats.solver_reuses += 1
            if not comp.solver.solve(comp.assumptions):
                raise_unsatisfiable(
                    self._registry, partial, entry.graph,
                    explain=self._explain_unsat, partition=True,
                )
            if comp.solver.stats.conflicts == 0:
                model = comp.solver.model()
            else:
                if comp.canonical is None:
                    comp.canonical = canonical_model(
                        comp.formula, comp.solver, comp.assumptions
                    )
                model = comp.canonical
            named = {
                str(name): value
                for name, value in comp.formula.decode_model(model).items()
            }
            deployed, choices = selected_nodes(comp.component.graph, named)
            component_spec = propagate(
                self._registry, comp.component.graph, deployed, choices
            )
            if self._check_types:
                check_spec(self._registry, component_spec)
            specs.append(component_spec)
        return merge_component_specs(specs)

    def revalidate_instances(
        self,
        partial: PartialInstallSpec,
        spec: InstallSpec,
        instance_ids: Iterable[str],
    ) -> int:
        """Re-derive ``instance_ids`` through the warm per-component
        solvers and insist they still match ``spec``; returns how many
        instances were re-validated.

        The shared goal-drift guard: both the reconcile loop (before
        repairing toward a goal) and the delta planner (before
        deploying a new goal) call this so that no instance is driven
        toward a definition the solver never approved -- a mismatch
        means the spec was mutated since configuration, and acting on
        it would deploy an unverified system, so fail loudly instead.
        """
        wanted = list(instance_ids)
        if not wanted:
            return 0
        fresh = self.reconfigure_components(partial, wanted)
        for instance in fresh:
            if instance.id in spec and instance != spec[instance.id]:
                raise ConfigurationError(
                    f"goal drift: instance {instance.id!r} no longer "
                    "matches its configured definition; refusing to act "
                    "on an unverified goal"
                )
        return len(fresh)

    # -- The parallel pipeline -------------------------------------------

    def _configure_parallel(
        self,
        partial: PartialInstallSpec,
        cache: SessionCacheInfo,
        timings: PhaseTimings,
        workers: int,
    ) -> ConfigurationResult:
        """Fan the components out across the session's worker pool.

        The parent caches the graph, its partition, and one *decoded
        outcome* per component; encodings and persistent incremental
        solvers are worker-resident, keyed by the partial-spec
        fingerprint (see :class:`repro.config.parallel.WorkerPool`).
        Replies stream in as compact signed-literal arrays, decoded and
        propagated parent-side while other components still solve; a
        worker whose model repeats ships a bare ``MODEL_UNCHANGED``
        header and the parent re-serves its decode cache -- the warm
        path moves almost nothing over the pipe.  Phase timings stay
        per-component sums (comparable to the serial pipelines) while
        :attr:`~repro.config.engine.PhaseTimings.parallel_wall_ms`
        records the actual fan-out wall time.
        """
        from repro.config.parallel import (
            decode_component_model,
            raise_component_error,
        )

        pool = self._ensure_pool(workers)
        key = ("parallel", cache.fingerprint)
        started = time.perf_counter()
        entry = self._lookup(key)
        if entry is not None:
            cache.graph_hit = True
            self.stats.graph_hits += 1
        else:
            graph = generate_graph(
                self._registry, partial, peer_policy=self._peer_policy
            )
            self.stats.graph_misses += 1
            ticked = time.perf_counter()
            timings.graph_ms = (ticked - started) * 1000.0
            entry = _Entry(graph, None, ConstraintStats(0, 0, 0, 0), [])
            entry.partition = partition_graph(graph)
            timings.partition_ms = (time.perf_counter() - ticked) * 1000.0
            self._store(key, entry)
        parts = entry.partition

        components_by_index = {
            component.index: component for component in parts.components
        }
        # Components the parent holds no decoded outcome for must ship
        # a full model even if the worker believes it unchanged.
        force = frozenset(
            component.index for component in parts.components
            if component.index not in entry.decoded
        )

        def materialize(outcome) -> None:
            # Streamed parent-side decode -> propagate -> typecheck.
            if outcome.model_unchanged:
                (outcome.named_model, outcome.deployed, outcome.choices,
                 outcome.instances) = entry.decoded[outcome.index]
                return
            component = components_by_index[outcome.index]
            tick = time.perf_counter()
            named, comp_deployed, comp_choices = decode_component_model(
                component, outcome.model
            )
            decode_done = time.perf_counter()
            spec = propagate(
                self._registry, component.graph, comp_deployed, comp_choices
            )
            if self._check_types:
                check_spec(self._registry, spec)
            outcome.named_model = named
            outcome.deployed = frozenset(comp_deployed)
            outcome.choices = comp_choices
            outcome.instances = tuple(spec)
            outcome.decode_ms = (decode_done - tick) * 1000.0
            outcome.propagate_ms = (
                time.perf_counter() - decode_done
            ) * 1000.0
            entry.decoded[outcome.index] = (
                outcome.named_model, outcome.deployed, outcome.choices,
                outcome.instances,
            )

        tick = time.perf_counter()
        outcomes = pool.run_components(
            parts.components, fingerprint=cache.fingerprint, keep=True,
            force=force, on_outcome=materialize,
        )
        timings.parallel_wall_ms = (time.perf_counter() - tick) * 1000.0
        # The CNF is "hit" when no worker had to (re-)encode a component.
        cache.cnf_hit = cache.graph_hit and not any(
            outcome.encoded for outcome in outcomes
        )
        if cache.cnf_hit:
            self.stats.cnf_hits += 1
        else:
            self.stats.cnf_misses += 1

        failure = next(
            (o for o in outcomes if o.status != "sat"), None
        )
        if failure is not None:
            if failure.status == "unsat":
                timings.encode_ms += failure.encode_ms
                timings.solve_ms += failure.solve_ms
                # Diagnose in the parent so the Theorem 1 message is
                # byte-identical to the serial one, whichever worker hit
                # the conflict.
                raise_unsatisfiable(
                    self._registry, partial, entry.graph,
                    explain=self._explain_unsat, partition=True,
                )
            raise_component_error(failure)

        info = PartitionInfo(
            partition_ms=timings.partition_ms, workers=pool.workers,
            wire=pool.last_wire,
        )
        aggregate_solver = SolverStats(components=len(outcomes))
        named_model: dict[str, bool] = {}
        deployed: set[str] = set()
        choices: dict[tuple[str, int], str] = {}
        for outcome in outcomes:
            named_model.update(outcome.named_model)
            deployed |= outcome.deployed
            choices.update(outcome.choices)
            _accumulate_solver_stats(aggregate_solver, outcome.solver_stats)
            if outcome.solver_reused:
                self.stats.solver_reuses += 1
            else:
                self.stats.solver_builds += 1
            timings.encode_ms += outcome.encode_ms
            timings.solve_ms += outcome.solve_ms
        cache.solver_reused = bool(outcomes) and all(
            outcome.solver_reused for outcome in outcomes
        )
        if not entry.stats_ready:
            for outcome in outcomes:
                _accumulate_constraint_stats(
                    entry.constraint_stats, outcome.constraint_stats
                )
            entry.stats_ready = True

        ticked = time.perf_counter()
        outcome_key = (frozenset(deployed), tuple(sorted(choices.items())))
        instances = entry.verified_specs.get(outcome_key)
        if instances is not None:
            spec = InstallSpec(instances)
            cache.typecheck_skipped = True
            self.stats.typecheck_skips += 1
        else:
            spec = merge_component_specs(
                [InstallSpec(outcome.instances) for outcome in outcomes]
            )
            entry.verified_specs[outcome_key] = tuple(spec)
            self.stats.typecheck_runs += 1
        merge_ms = (time.perf_counter() - ticked) * 1000.0
        timings.propagate_ms = (
            sum(
                outcome.decode_ms + outcome.propagate_ms
                for outcome in outcomes
            )
            + merge_ms
        )

        for outcome, component in zip(outcomes, parts.components):
            info.components.append(
                ComponentStats(
                    index=component.index,
                    nodes=len(component.graph),
                    edges=len(component.graph.edges()),
                    pinned=len(component.pinned),
                    encode_ms=outcome.encode_ms,
                    solve_ms=outcome.solve_ms,
                    propagate_ms=outcome.propagate_ms,
                    decisions=outcome.solver_stats.decisions,
                    conflicts=outcome.solver_stats.conflicts,
                    worker=outcome.worker,
                    decode_ms=outcome.decode_ms,
                    recv_ms=outcome.recv_ms,
                )
            )
        emit_config_trace(self._tracer, timings, cache, partition=info)
        return ConfigurationResult(
            spec=spec,
            graph=entry.graph,
            formula=None,
            model=named_model,
            constraint_stats=entry.constraint_stats,
            solver_stats=aggregate_solver,
            deployed_ids=deployed,
            timings=timings,
            cache=cache,
            partition=info,
        )
