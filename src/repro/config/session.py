"""Incremental configuration sessions (the warm-query fast path).

The paper's §6.2 evaluation -- and any deployment manager serving
repeated traffic -- runs *families* of near-identical configuration
queries against one fixed resource library: re-planning a deployment,
sweeping a configuration space, answering the same request for many
tenants.  :class:`ConfigurationEngine` treats every call as cold; this
module amortizes all per-query work that does not depend on fresh
input:

* registry **well-formedness** is verified once and memoized on the
  registry (invalidated when a type is registered);
* **hypergraph generation** is memoized per canonical structural
  fingerprint of the partial specification
  (:mod:`repro.config.fingerprint`);
* the **CNF encoding** is cached at the same key, with the family-1
  facts expressed as *assumption literals* rather than unit clauses, so
  the clause database encodes only graph structure;
* one **persistent incremental** :class:`~repro.sat.solver.CdclSolver`
  per cached entry answers every solve: learned clauses, VSIDS
  activities, and saved phases survive across calls, and each query is
  just a new assumption vector over the shared clause database;
* the **propagated specification** is memoized per decoded outcome -- a
  warm call that reproduces an already-verified (deployed, choices) pair
  reuses the frozen :class:`~repro.core.instances.ResourceInstance`
  values instead of re-running value propagation and the static
  re-check, wrapped in a fresh
  :class:`~repro.core.instances.InstallSpec` container so callers that
  mutate their spec (provisioning, upgrades) cannot corrupt the cache.

Results are bit-identical to per-call
:meth:`ConfigurationEngine.configure` output: the same full
specifications and deployed ids, with cache/timing metadata attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.instances import InstallSpec, PartialInstallSpec
from repro.core.registry import ResourceTypeRegistry
from repro.core.wellformed import assert_well_formed
from repro.config.constraints import (
    ConstraintStats,
    fact_literals,
    generate_constraints,
    selected_nodes,
)
from repro.config.engine import (
    ConfigurationResult,
    PhaseTimings,
    SessionCacheInfo,
    emit_config_trace,
    raise_unsatisfiable,
)
from repro.config.fingerprint import fingerprint_partial
from repro.config.hypergraph import ResourceGraph, generate_graph
from repro.config.propagation import propagate
from repro.config.typecheck import check_spec
from repro.sat.cnf import CnfFormula
from repro.sat.encodings import ExactlyOneEncoding
from repro.sat.solver import CdclSolver, DpllSolver


@dataclass
class SessionStats:
    """Cumulative cache-hit/miss counters for one session."""

    configure_calls: int = 0
    graph_hits: int = 0
    graph_misses: int = 0
    cnf_hits: int = 0
    cnf_misses: int = 0
    solver_builds: int = 0
    solver_reuses: int = 0
    typecheck_runs: int = 0
    typecheck_skips: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.graph_hits + self.graph_misses
        return self.graph_hits / total if total else 0.0


class _Entry:
    """Everything cached for one partial-spec fingerprint."""

    __slots__ = (
        "graph", "formula", "constraint_stats", "assumptions", "solver",
        "verified_specs",
    )

    def __init__(
        self,
        graph: ResourceGraph,
        formula: CnfFormula,
        constraint_stats: ConstraintStats,
        assumptions: list[int],
    ) -> None:
        self.graph = graph
        self.formula = formula
        self.constraint_stats = constraint_stats
        self.assumptions = assumptions
        self.solver: Optional[CdclSolver] = None
        #: (deployed, choices) outcome -> the propagated (and, when
        #: enabled, typechecked) instances, in topological order.  The
        #: instances are frozen dataclasses, so reuse is safe; only the
        #: InstallSpec container is rebuilt per call.
        self.verified_specs: dict[tuple, tuple] = {}


class ConfigurationSession:
    """A long-lived, cache-backed front end to the configuration engine.

    Accepts the same options as :class:`ConfigurationEngine` and
    produces bit-identical results; see the module docstring for what
    is amortized across calls.  ``max_entries`` bounds the cache (least
    recently used entries are evicted, keeping memory flat under
    unbounded distinct-query traffic).
    """

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        *,
        encoding: ExactlyOneEncoding = ExactlyOneEncoding.PAIRWISE,
        solver: str = "cdcl",
        check_types: bool = True,
        verify_registry: bool = True,
        explain_unsat: bool = True,
        peer_policy: str = "colocate",
        max_entries: int = 1024,
        tracer=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._registry = registry
        self._encoding = encoding
        self._solver = solver
        self._check_types = check_types
        self._verify_registry = verify_registry
        self._explain_unsat = explain_unsat
        self._peer_policy = peer_policy
        self._max_entries = max_entries
        self._tracer = tracer
        self._entries: dict[str, _Entry] = {}
        self.stats = SessionStats()
        if verify_registry:
            assert_well_formed(registry)
        self._registry_version = registry.version

    @property
    def registry(self) -> ResourceTypeRegistry:
        return self._registry

    def __len__(self) -> int:
        """Number of cached partial-spec structures."""
        return len(self._entries)

    def flush(self) -> None:
        """Drop every cached graph, formula, and solver."""
        self._entries.clear()

    # -- Cache plumbing -------------------------------------------------

    def _revalidate(self) -> None:
        """Flush if the registry changed since the caches were built."""
        if self._registry.version == self._registry_version:
            return
        self.flush()
        self.stats.invalidations += 1
        if self._verify_registry:
            assert_well_formed(self._registry)
        self._registry_version = self._registry.version

    def _lookup(self, fingerprint: str) -> Optional[_Entry]:
        entry = self._entries.pop(fingerprint, None)
        if entry is not None:
            self._entries[fingerprint] = entry  # re-insert: LRU refresh
        return entry

    def _store(self, fingerprint: str, entry: _Entry) -> None:
        self._entries[fingerprint] = entry
        if len(self._entries) > self._max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.stats.evictions += 1

    # -- The pipeline ---------------------------------------------------

    def configure(self, partial: PartialInstallSpec) -> ConfigurationResult:
        """Expand ``partial``, reusing every cache the session holds.

        Semantics match :meth:`ConfigurationEngine.configure`, including
        :class:`~repro.core.errors.UnsatisfiableError` on Theorem 1
        failures.
        """
        self._revalidate()
        self.stats.configure_calls += 1
        timings = PhaseTimings()
        cache = SessionCacheInfo(fingerprint=fingerprint_partial(partial))

        started = time.perf_counter()
        entry = self._lookup(cache.fingerprint)
        if entry is not None:
            cache.graph_hit = True
            cache.cnf_hit = True
            self.stats.graph_hits += 1
            self.stats.cnf_hits += 1
        else:
            graph = generate_graph(
                self._registry, partial, peer_policy=self._peer_policy
            )
            self.stats.graph_misses += 1
            ticked = time.perf_counter()
            timings.graph_ms = (ticked - started) * 1000.0
            formula, constraint_stats = generate_constraints(
                graph, self._encoding, facts_as_assumptions=True
            )
            assumptions = sorted(fact_literals(graph, formula).values())
            self.stats.cnf_misses += 1
            entry = _Entry(graph, formula, constraint_stats, assumptions)
            self._store(cache.fingerprint, entry)
            started = time.perf_counter()
            timings.encode_ms = (started - ticked) * 1000.0

        started = time.perf_counter()
        solved, model, solver_stats = self._solve(entry, cache)
        ticked = time.perf_counter()
        timings.solve_ms = (ticked - started) * 1000.0
        if not solved:
            raise_unsatisfiable(
                self._registry, partial, entry.graph,
                explain=self._explain_unsat,
            )

        named_model = {
            str(name): value
            for name, value in entry.formula.decode_model(model).items()
        }
        deployed, choices = selected_nodes(entry.graph, named_model)
        outcome = (frozenset(deployed), tuple(sorted(choices.items())))
        instances = entry.verified_specs.get(outcome)
        if instances is not None:
            spec = InstallSpec(instances)
            cache.typecheck_skipped = True
            self.stats.typecheck_skips += 1
        else:
            spec = propagate(self._registry, entry.graph, deployed, choices)
            if self._check_types:
                check_spec(self._registry, spec)
            entry.verified_specs[outcome] = tuple(spec)
            self.stats.typecheck_runs += 1
        timings.propagate_ms = (time.perf_counter() - ticked) * 1000.0
        emit_config_trace(self._tracer, timings, cache)
        return ConfigurationResult(
            spec=spec,
            graph=entry.graph,
            formula=entry.formula,
            model=named_model,
            constraint_stats=entry.constraint_stats,
            solver_stats=solver_stats,
            deployed_ids=deployed,
            timings=timings,
            cache=cache,
        )

    def _solve(self, entry: _Entry, cache: SessionCacheInfo):
        """Solve the entry's clause database under its assumptions.

        Returns ``(solved, model, solver_stats)``.  The CDCL solver's
        stats are *cumulative* across every call that hit this entry --
        ``solve_calls > 1`` is the proof of clause-database reuse.
        """
        if self._solver == "dpll":
            # The DPLL baseline has no incremental state worth keeping:
            # build it fresh from the cached formula (still skipping
            # graph generation and encoding).
            dpll = DpllSolver(entry.formula)
            self.stats.solver_builds += 1
            if not dpll.solve(entry.assumptions):
                return False, {}, dpll.stats
            return True, dpll.model(), dpll.stats
        if entry.solver is None:
            entry.solver = CdclSolver(entry.formula)
            self.stats.solver_builds += 1
        else:
            cache.solver_reused = True
            self.stats.solver_reuses += 1
        if not entry.solver.solve(entry.assumptions):
            return False, {}, entry.solver.stats
        return True, entry.solver.model(), entry.solver.stats
