"""The Django platform stack (S6.2).

"Engage allows the following (independent) configuration choices for
Django applications: OS (4), web server (Gunicorn or Apache), database
(SQLite or MySQL), optional components (RabbitMQ/Celery, Redis,
memcached), optional monitoring (Monit) -- 256 distinct deployment
configurations on a single node."

``Django-App`` is the abstract parent of generated per-application types
(see :mod:`repro.django.packager`); its dependencies on the abstract
``WebServer`` and ``Database`` are what make those choices solver-driven
when the partial spec does not pin them.
"""

from __future__ import annotations

from repro.core.builder import define
from repro.core.ports import BOOL, INT, PASSWORD, PATH, STRING, TCP_PORT
from repro.core.resource_type import ResourceType
from repro.core.values import Format, Lit, RecordExpr, config_ref, input_ref
from repro.drivers.base import DriverRegistry
from repro.drivers.library import PackageDriver, ServiceDriver
from repro.library.base import (
    BROKER_RECORD,
    CELERY_RECORD,
    DATABASE_RECORD,
    HOST_RECORD,
    PYTHON_RECORD,
    WEBSERVER_RECORD,
)


def python_types() -> list[ResourceType]:
    """The Python runtime and platform-level Python packages."""
    python = (
        define("Python-Runtime", "2.7", driver="package")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .output(
            "python",
            PYTHON_RECORD,
            value=RecordExpr.of(
                executable=Lit("/opt/python-runtime-2.7/bin/python"),
                version=Lit("2.7"),
                site_packages=Lit(
                    "/opt/python-runtime-2.7/lib/python2.7/site-packages"
                ),
            ),
        )
        .build()
    )
    django = (
        define("Django", "1.3", driver="package")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .env("Python-Runtime 2.7", python="python")
        .input("python", PYTHON_RECORD)
        .output("django_version", STRING, value=Lit("1.3"))
        .build()
    )
    south = (
        define("South", "0.7", driver="package")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .env("Python-Runtime 2.7", python="python")
        .input("python", PYTHON_RECORD)
        .output("south_version", STRING, value=Lit("0.7"))
        .build()
    )
    return [python, django, south]


def webserver_types() -> list[ResourceType]:
    """Abstract ``WebServer`` with Gunicorn and Apache beneath it."""
    webserver = (
        define("WebServer", abstract=True, driver="service")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .config("port", TCP_PORT, 8000)
        .output("webserver", WEBSERVER_RECORD)
        .build()
    )
    gunicorn = (
        define("Gunicorn", "0.13", extends="WebServer", driver="gunicorn")
        .env("Python-Runtime 2.7", python="python")
        .input("python", PYTHON_RECORD)
        .config("workers", INT, 4)
        .output(
            "webserver",
            WEBSERVER_RECORD,
            value=RecordExpr.of(
                kind=Lit("gunicorn"),
                hostname=input_ref("host", "hostname"),
                port=config_ref("port"),
            ),
        )
        .build()
    )
    apache = (
        define("Apache-HTTPD", "2.2", extends="WebServer", driver="apache")
        .config("port", TCP_PORT, 80)
        .output(
            "webserver",
            WEBSERVER_RECORD,
            value=RecordExpr.of(
                kind=Lit("apache"),
                hostname=input_ref("host", "hostname"),
                port=config_ref("port"),
            ),
        )
        .build()
    )
    return [webserver, gunicorn, apache]


def celery_types() -> list[ResourceType]:
    """Celery workers, connected to RabbitMQ as a peer."""
    celery = (
        define("Celery", "2.4", driver="celery")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .env("Python-Runtime 2.7", python="python")
        .input("python", PYTHON_RECORD)
        .peer("RabbitMQ 2.7", broker="broker")
        .input("broker", BROKER_RECORD)
        .config("concurrency", INT, 2)
        .output(
            "celery",
            CELERY_RECORD,
            value=RecordExpr.of(
                broker_host=input_ref("broker", "host"),
                broker_port=input_ref("broker", "port"),
            ),
        )
        .build()
    )
    return [celery]


def django_app_base() -> ResourceType:
    """The abstract parent of generated Django application types.

    Dependencies: inside a Server, Django + a WebServer on the same
    machine, a Database as a peer (possibly remote -- the WebApp
    production topology runs MySQL on its own node).
    """
    return (
        define("Django-App", abstract=True, driver="django-app")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .env("Django 1.3", django_version="django_version")
        .input("django_version", STRING)
        .env("WebServer", webserver="webserver")
        .input("webserver", WEBSERVER_RECORD)
        .peer("Database", database="database")
        .input("database", DATABASE_RECORD)
        .config("app_name", STRING, "app", static=True)
        .config("app_version", STRING, "1.0", static=True)
        .config("secret_key", PASSWORD, "change-me")
        .config("debug", BOOL, False)
        .output(
            "url",
            STRING,
            value=Format.of(
                "http://{host}:{port}/",
                host=input_ref("webserver", "hostname"),
                port=input_ref("webserver", "port"),
            ),
        )
        .build()
    )


def pip_package_type(name: str, version: str) -> ResourceType:
    """A resource type for one PyPI package (the "declarative enumeration
    of Python packages" of S6.2)."""
    return (
        define(f"PyPkg-{name}", version, driver="pip-package")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .env("Python-Runtime 2.7", python="python")
        .input("python", PYTHON_RECORD)
        .output("module", STRING, value=Lit(name))
        .build()
    )


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


class GunicornDriver(ServiceDriver):
    def service_name(self) -> str:
        return f"gunicorn-{self.context.instance.id}"


class ApacheDriver(ServiceDriver):
    package_name = "apache-httpd"

    def service_name(self) -> str:
        return f"httpd-{self.context.instance.id}"

    def write_config_files(self) -> None:
        fs = self.context.machine.fs
        fs.write_file(
            "/etc/httpd.conf", f"Listen {self.context.config('port')}\n"
        )


class CeleryDriver(ServiceDriver):
    """A worker pool: no listening port, but startup requires the broker
    to accept connections."""

    def listen_ports(self):
        return []

    def service_name(self) -> str:
        return f"celeryd-{self.context.instance.id}"

    def upstream_endpoints(self):
        broker = self.context.input("broker")
        return [(broker["host"], broker["port"])]


class PipPackageDriver(PackageDriver):
    """pip install into the runtime's site-packages."""

    install_root = "/opt/python-runtime-2.7/lib/python2.7/site-packages"

    def artifact(self) -> tuple[str, str]:
        # Key name is "PyPkg-<dist>"; the artifact drops the prefix.
        name = self.context.instance.key.name
        dist = name[len("PyPkg-"):] if name.startswith("PyPkg-") else name
        return f"pypi-{dist.lower()}", str(self.context.instance.key.version)


def register_django_stack_drivers(drivers: DriverRegistry) -> None:
    drivers.register("gunicorn", GunicornDriver)
    drivers.register("apache", ApacheDriver)
    drivers.register("celery", CeleryDriver)
    drivers.register("pip-package", PipPackageDriver)
