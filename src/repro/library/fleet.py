"""Parameterized fleet topologies (the §6 scale experiments).

The paper evaluates configuration on single stacks; a deployment
manager in production faces *fleets* -- N replicas of a few canonical
stacks spread over M machines.  This module generates such partial
specifications from the standard library, at any size, without hand
writing thousands of JSON lines:

* each **machine** is a pinned OS instance (``host000``, ``host001``,
  ...) with a unique hostname/IP;
* each **replica** is one stack recipe (an OpenMRS clinic, a
  JasperReports analytics server, or a Django web application) pinned
  *inside* one machine, round-robin over both the stack list and the
  machine list;
* every replica pins its own stateful backends (MySQL, RabbitMQ) on
  its machine, so peer dependencies resolve machine-locally and the
  generated hypergraph splits into exactly one connected component per
  machine -- the workload :mod:`repro.config.partition` is built for;
* every listening service gets a replica-unique port from a disjoint
  per-service range, so replicas of the same stack can share a machine
  without colliding at deploy time.

The module doubles as a generator script::

    python -m repro.library.fleet --replicas 6 --machines 3 -o fleet.json

which is how ``examples/stacks/fleet.json`` is produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.instances import PartialInstallSpec, PartialInstance
from repro.core.keys import ResourceKey


#: Stack recipes: name -> builder(replica_index, host_id) -> instances.
_STACKS: dict[str, Callable[[int, str], list[PartialInstance]]] = {}


def _stack(name: str):
    def register(builder):
        _STACKS[name] = builder
        return builder
    return register


def _instance(
    id: str, key: str, inside: str, config: dict | None = None
) -> PartialInstance:
    return PartialInstance(
        id=id,
        key=ResourceKey.parse(key),
        inside_id=inside,
        config=dict(config or {}),
    )


@_stack("openmrs")
def _openmrs_replica(index: int, host: str) -> list[PartialInstance]:
    """An OpenMRS clinic: Tomcat + webapp + a dedicated MySQL.

    The Java environment dependency is left open, so the solver picks
    the runtime (exercising a generated exactly-one choice per replica).
    """
    tomcat = f"tomcat{index:03d}"
    return [
        _instance(tomcat, "Tomcat 6.0.18", host,
                  {"manager_port": 10000 + index}),
        _instance(f"openmrs{index:03d}", "OpenMRS 1.8", tomcat,
                  {"context_path": f"openmrs{index:03d}"}),
        _instance(f"db{index:03d}", "MySQL 5.1", host,
                  {"database_name": f"openmrs{index:03d}",
                   "port": 13306 + index}),
    ]


@_stack("jasper")
def _jasper_replica(index: int, host: str) -> list[PartialInstance]:
    """A JasperReports analytics server: Tomcat + reports + MySQL.

    Adds a second generated node family (the JDBC connector) on top of
    the Java runtime choice.
    """
    tomcat = f"tomcat{index:03d}"
    return [
        _instance(tomcat, "Tomcat 6.0.18", host,
                  {"manager_port": 10000 + index}),
        _instance(f"jasper{index:03d}", "JasperReports-Server 4.2", tomcat),
        _instance(f"db{index:03d}", "MySQL 5.1", host,
                  {"database_name": f"jasper{index:03d}",
                   "port": 13306 + index}),
    ]


@_stack("django")
def _django_replica(index: int, host: str) -> list[PartialInstance]:
    """A Django web application: Gunicorn + Celery + broker + cache.

    The Python runtime is generated (and shared by Gunicorn and Celery
    on the machine); the RabbitMQ broker is pinned so Celery's peer
    dependency resolves to this replica's machine.
    """
    return [
        _instance(f"web{index:03d}", "Gunicorn 0.13", host,
                  {"port": 8000 + index}),
        _instance(f"worker{index:03d}", "Celery 2.4", host),
        _instance(f"broker{index:03d}", "RabbitMQ 2.7", host,
                  {"vhost": f"/app{index:03d}",
                   "port": 25672 + index}),
        _instance(f"cache{index:03d}", "Redis 2.4", host,
                  {"port": 16379 + index}),
        _instance(f"monitor{index:03d}", "Monit 5.3", host,
                  {"port": 28120 + index}),
    ]


@dataclass(frozen=True)
class FleetTopology:
    """Shape of a generated fleet.

    ``replicas`` stacks are placed round-robin over ``machines`` hosts
    and over ``stacks`` recipes, so any sufficiently large fleet mixes
    every stack on every machine.
    """

    replicas: int = 6
    machines: int = 3
    stacks: tuple[str, ...] = ("openmrs", "jasper", "django")
    machine_key: str = "Ubuntu-Linux 10.4"

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("a fleet needs at least one replica")
        if self.machines < 1:
            raise ValueError("a fleet needs at least one machine")
        unknown = [name for name in self.stacks if name not in _STACKS]
        if unknown or not self.stacks:
            raise ValueError(
                f"unknown stacks {unknown}; available: {sorted(_STACKS)}"
            )


def fleet_spec_entries(topology: FleetTopology) -> list[PartialInstance]:
    """The pinned instances of ``topology``, machines first."""
    entries: list[PartialInstance] = []
    hosts: list[str] = []
    for machine in range(topology.machines):
        host = f"host{machine:03d}"
        hosts.append(host)
        entries.append(
            PartialInstance(
                id=host,
                key=ResourceKey.parse(topology.machine_key),
                inside_id=None,
                config={
                    "hostname": f"fleet-{machine:03d}",
                    "ip_address": f"10.0.{machine // 250}.{machine % 250 + 1}",
                },
            )
        )
    for index in range(topology.replicas):
        host = hosts[index % topology.machines]
        stack = topology.stacks[index % len(topology.stacks)]
        entries.extend(_STACKS[stack](index, host))
    return entries


def fleet_partial(topology: FleetTopology) -> PartialInstallSpec:
    """The fleet as a partial installation specification."""
    spec = PartialInstallSpec()
    for entry in fleet_spec_entries(topology):
        spec.add(entry)
    return spec


def fleet_spec_json(topology: FleetTopology) -> str:
    """The fleet serialised in the Figure 2 JSON shape."""
    from repro.dsl.json_spec import partial_to_json

    return partial_to_json(fleet_partial(topology))


def write_fleet_spec(path: str, topology: FleetTopology) -> None:
    """Write the fleet spec JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(fleet_spec_json(topology))


def configure_fleet(
    topology: FleetTopology,
    *,
    registry=None,
    partition: bool = True,
    workers: int | None = None,
):
    """Generate and configure ``topology``; return ``(result, seconds)``.

    The scale-experiment entry point: builds the partial specification,
    runs it through a :class:`~repro.config.ConfigurationEngine`
    (partitioned by default, on a ``workers``-sized process pool when
    requested), and reports the configure wall time.
    """
    import time

    from repro.config import ConfigurationEngine
    from repro.library import standard_registry

    if registry is None:
        registry = standard_registry()
    partial = fleet_partial(topology)
    engine = ConfigurationEngine(
        registry, partition=partition, workers=workers,
        verify_registry=False,
    )
    try:
        started = time.perf_counter()
        result = engine.configure(partial)
        elapsed = time.perf_counter() - started
    finally:
        engine.close()
    return result, elapsed


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.library.fleet",
        description="Generate a fleet-scale partial installation spec.",
    )
    parser.add_argument("--replicas", type=int, default=6)
    parser.add_argument("--machines", type=int, default=3)
    parser.add_argument(
        "--stacks", nargs="+", default=list(FleetTopology.stacks),
        choices=sorted(_STACKS),
    )
    parser.add_argument("-o", "--output", default=None,
                        help="write here instead of stdout")
    parser.add_argument(
        "--configure", action="store_true",
        help="configure the generated fleet and print throughput "
        "instead of emitting the spec JSON",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="with --configure: solve components on a process pool of "
        "N workers (0 = one per core)",
    )
    parser.add_argument(
        "--no-partition", dest="partition", action="store_false",
        default=True,
        help="with --configure: force the monolithic pipeline",
    )
    args = parser.parse_args(argv)
    topology = FleetTopology(
        replicas=args.replicas, machines=args.machines,
        stacks=tuple(args.stacks),
    )
    if args.configure:
        if args.workers is not None and not args.partition:
            parser.error("--workers requires the partitioned pipeline")
        result, elapsed = configure_fleet(
            topology, partition=args.partition, workers=args.workers,
        )
        nodes = len(result.spec)
        label = (
            f"{result.partition.count} components"
            if result.partition is not None else "monolithic"
        )
        pool = (
            f" on {result.partition.workers} workers"
            if result.partition is not None and result.partition.workers
            else ""
        )
        print(
            f"configured {nodes} nodes ({label}{pool}) in "
            f"{elapsed:.2f}s -- {nodes / elapsed:.0f} nodes/sec"
        )
        return 0
    text = fleet_spec_json(topology)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
