"""Server resource types.

``Server`` is the abstract root of all machines (Figure 1); concrete
subtypes fix the operating system.  The OS identity lives in *static*
config ports -- constants of each subtype -- which is what provisioning
reads to choose a cloud image (S5.2).
"""

from __future__ import annotations

from repro.core.builder import define
from repro.core.ports import Binding, HOSTNAME, STRING
from repro.core.resource_type import ResourceType
from repro.core.values import RecordExpr, config_ref
from repro.library.base import HOST_RECORD


def _server_subtype(
    name: str, version: str, os_name: str, os_version: str
) -> ResourceType:
    return (
        define(name, version, extends="Server", driver="machine")
        .config("os_name", STRING, os_name, static=True)
        .config("os_version", STRING, os_version, static=True)
        .build()
    )


def server_types() -> list[ResourceType]:
    """The abstract ``Server`` and its concrete OS subtypes."""
    server = (
        define("Server", abstract=True, driver="machine")
        .config("hostname", HOSTNAME, "localhost")
        .config("ip_address", STRING, "127.0.0.1")
        .config("os_user_name", STRING, "root")
        .config("os_name", STRING, "generic", static=True)
        .config("os_version", STRING, "0", static=True)
        .output(
            "host",
            HOST_RECORD,
            value=RecordExpr.of(
                hostname=config_ref("hostname"),
                ip_address=config_ref("ip_address"),
                os_user_name=config_ref("os_user_name"),
            ),
        )
        .build()
    )
    return [
        server,
        _server_subtype("Mac-OSX", "10.5", "mac-osx", "10.5"),
        _server_subtype("Mac-OSX", "10.6", "mac-osx", "10.6"),
        _server_subtype("Ubuntu-Linux", "10.04", "ubuntu-linux", "10.04"),
        _server_subtype("Ubuntu-Linux", "10.10", "ubuntu-linux", "10.10"),
        _server_subtype("Windows-XP", "5.1", "windows", "5.1"),
    ]
