"""Shared definitions for the resource library.

The paper's implementation shipped "about 5K lines of resource types in
our resource library"; this package is that library.  Here live the
record types flowing between components, the artifact catalogue (sizes
drive the simulated install times of E4), and the assembly helpers that
produce a ready-to-use registry, driver registry, and package index.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.ports import (
    BOOL,
    HOSTNAME,
    INT,
    PASSWORD,
    PATH,
    STRING,
    TCP_PORT,
    ListType,
    RecordType,
)
from repro.sim.infrastructure import Infrastructure

# ---------------------------------------------------------------------------
# Record types flowing along port mappings.
# ---------------------------------------------------------------------------

#: What a machine exports to everything installed on it.
HOST_RECORD = RecordType.of(
    hostname=HOSTNAME,
    ip_address=STRING,
    os_user_name=STRING,
)

#: What a Java runtime exports (JDK or JRE).
JAVA_RECORD = RecordType.of(home=PATH, version=STRING, kind=STRING)

#: What a servlet container exports to the servlets inside it.
SERVLET_CONTAINER_RECORD = RecordType.of(
    hostname=HOSTNAME,
    port=TCP_PORT,
    home=PATH,
    manager_user=STRING,
    manager_password=PASSWORD,
)

#: What a relational database exports to its clients.  ``engine`` is
#: "mysql" or "sqlite"; file-backed engines use ``path`` and leave the
#: network fields neutral.
DATABASE_RECORD = RecordType.of(
    engine=STRING,
    host=HOSTNAME,
    port=TCP_PORT,
    database=STRING,
    user=STRING,
    password=PASSWORD,
    path=PATH,
)

#: What an HTTP front end (gunicorn / apache) exports.
WEBSERVER_RECORD = RecordType.of(kind=STRING, hostname=HOSTNAME, port=TCP_PORT)

#: Key-value store endpoint (redis / memcached / mongodb).
KV_RECORD = RecordType.of(kind=STRING, host=HOSTNAME, port=TCP_PORT)

#: Message broker endpoint (rabbitmq).
BROKER_RECORD = RecordType.of(
    host=HOSTNAME, port=TCP_PORT, user=STRING, password=PASSWORD, vhost=STRING
)

#: A Python runtime (interpreter + site-packages root).
PYTHON_RECORD = RecordType.of(executable=PATH, version=STRING, site_packages=PATH)

#: What a Celery worker pool exports.
CELERY_RECORD = RecordType.of(broker_host=HOSTNAME, broker_port=TCP_PORT)


# ---------------------------------------------------------------------------
# The artifact catalogue: package slug -> (version, size in bytes).
# Sizes are period-realistic and drive the E4 install-time experiment.
# ---------------------------------------------------------------------------

ARTIFACTS: dict[tuple[str, str], int] = {
    ("jdk", "1.6"): 180_000_000,
    ("jre", "1.6"): 90_000_000,
    ("tomcat", "5.5"): 10_000_000,
    ("tomcat", "6.0.18"): 12_000_000,
    ("openmrs", "1.8"): 90_000_000,
    ("jasperreports-server", "4.2"): 310_000_000,
    ("mysql-jdbc-connector", "5.1.17"): 4_000_000,
    ("mysql", "5.1"): 160_000_000,
    ("postgresql", "8.4"): 45_000_000,
    ("sqlite", "3.7"): 3_000_000,
    ("redis", "2.4"): 1_500_000,
    ("mongodb", "2.0"): 40_000_000,
    ("memcached", "1.4"): 1_000_000,
    ("rabbitmq", "2.7"): 20_000_000,
    ("monit", "5.3"): 1_200_000,
    ("python-runtime", "2.7"): 55_000_000,
    ("apache-httpd", "2.2"): 25_000_000,
    ("gunicorn", "0.13"): 400_000,
    ("django", "1.3"): 7_000_000,
    ("celery", "2.4"): 2_500_000,
    ("south", "0.7"): 500_000,
    # The Engage slave agent itself (multi-host coordination, S5.2).
    ("engage-agent", "1.0"): 2_000_000,
}

#: Default size for artifacts not in the catalogue (pip packages, apps).
DEFAULT_ARTIFACT_SIZE = 800_000


def publish_artifacts(
    infrastructure: Infrastructure,
    extra: Iterable[tuple[str, str, int]] = (),
) -> None:
    """Publish the whole catalogue (plus ``extra`` entries) into the
    infrastructure's package index, skipping already-published ones."""
    index = infrastructure.package_index
    for (name, version), size in ARTIFACTS.items():
        if not index.has(name, version):
            index.publish_simple(name, version, size)
    for name, version, size in extra:
        if not index.has(name, version):
            index.publish_simple(name, version, size)


def ensure_artifact(
    infrastructure: Infrastructure,
    name: str,
    version: str,
    size: int = DEFAULT_ARTIFACT_SIZE,
) -> None:
    """Publish one artifact if the index does not know it yet."""
    if not infrastructure.package_index.has(name, version):
        infrastructure.package_index.publish_simple(name, version, size)
