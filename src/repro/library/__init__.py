"""The resource library: the paper's "5K lines of resource types".

:func:`standard_registry` assembles every built-in resource type (the
Java stack, databases and stores, the Django platform);
:func:`standard_drivers` pairs them with driver implementations; and
:func:`standard_infrastructure` builds a simulation world with all the
needed artifacts published.
"""

from __future__ import annotations

from repro.core.registry import ResourceTypeRegistry
from repro.drivers.base import DriverRegistry
from repro.library.base import (
    ARTIFACTS,
    BROKER_RECORD,
    CELERY_RECORD,
    DATABASE_RECORD,
    DEFAULT_ARTIFACT_SIZE,
    HOST_RECORD,
    JAVA_RECORD,
    KV_RECORD,
    PYTHON_RECORD,
    SERVLET_CONTAINER_RECORD,
    WEBSERVER_RECORD,
    ensure_artifact,
    publish_artifacts,
)
from repro.library.databases import (
    database_types,
    register_store_drivers,
    store_types,
)
from repro.library.django_stack import (
    celery_types,
    django_app_base,
    pip_package_type,
    python_types,
    register_django_stack_drivers,
    webserver_types,
)
from repro.library.java import (
    TOMCAT_VERSIONS,
    jasper_types,
    java_types,
    openmrs_types,
    register_java_drivers,
    tomcat_types,
)
from repro.library.servers import server_types
from repro.sim.infrastructure import Infrastructure


def standard_types() -> list:
    """Every built-in resource type, in registration order (supertypes
    before subtypes)."""
    return (
        server_types()
        + java_types()
        + tomcat_types()
        + database_types()
        + openmrs_types()
        + jasper_types()
        + store_types()
        + python_types()
        + webserver_types()
        + celery_types()
        + [django_app_base()]
    )


def standard_registry() -> ResourceTypeRegistry:
    """A registry holding the whole built-in library."""
    return ResourceTypeRegistry(standard_types())


def standard_drivers() -> DriverRegistry:
    """A driver registry covering every built-in resource type."""
    from repro.runtime.deploy import standard_driver_registry
    from repro.django.driver import register_django_app_driver

    drivers = standard_driver_registry()
    register_java_drivers(drivers)
    register_store_drivers(drivers)
    register_django_stack_drivers(drivers)
    register_django_app_driver(drivers)
    return drivers


def standard_infrastructure(
    *, use_cache: bool = True, with_cloud: bool = True
) -> Infrastructure:
    """A simulation world with the artifact catalogue published and
    (optionally) a cloud provider configured."""
    infrastructure = Infrastructure(use_cache=use_cache)
    publish_artifacts(infrastructure)
    if with_cloud:
        infrastructure.add_provider("rackspace-sim")
    return infrastructure


__all__ = [
    "ARTIFACTS",
    "BROKER_RECORD",
    "CELERY_RECORD",
    "DATABASE_RECORD",
    "DEFAULT_ARTIFACT_SIZE",
    "HOST_RECORD",
    "JAVA_RECORD",
    "KV_RECORD",
    "PYTHON_RECORD",
    "SERVLET_CONTAINER_RECORD",
    "TOMCAT_VERSIONS",
    "WEBSERVER_RECORD",
    "celery_types",
    "database_types",
    "django_app_base",
    "ensure_artifact",
    "jasper_types",
    "java_types",
    "openmrs_types",
    "pip_package_type",
    "publish_artifacts",
    "python_types",
    "server_types",
    "standard_drivers",
    "standard_infrastructure",
    "standard_registry",
    "standard_types",
    "store_types",
    "tomcat_types",
    "webserver_types",
]
