"""The Java stack: Java runtimes, Tomcat, OpenMRS, JasperReports.

These are the resource types of the paper's Figure 1 and the S6.1 case
study, each paired with a driver.  OpenMRS demonstrates the S3.4 static
reverse mapping: its static output ``webapp_config`` flows *backwards*
into Tomcat's ``extra_config`` input, so Tomcat can materialise the
servlet context file while installing -- before OpenMRS exists.
"""

from __future__ import annotations

from repro.core.builder import define
from repro.core.keys import ResourceKey
from repro.core.ports import PASSWORD, PATH, STRING, TCP_PORT
from repro.core.resource_type import (
    Dependency,
    DependencyAlternative,
    DependencyKind,
    PortMapping,
    ResourceType,
)
from repro.core.values import Format, Lit, RecordExpr, config_ref, input_ref
from repro.drivers.base import DriverRegistry
from repro.drivers.library import ArchiveDriver, PackageDriver, ServiceDriver
from repro.library.base import (
    DATABASE_RECORD,
    HOST_RECORD,
    JAVA_RECORD,
    SERVLET_CONTAINER_RECORD,
)

TOMCAT_VERSIONS = ("5.5", "6.0.18")


def java_types() -> list[ResourceType]:
    """Abstract ``Java`` plus the JDK and JRE runtimes (Figure 1)."""
    java = (
        define("Java", abstract=True, driver="package")
        .inside("Server")
        .output("java", JAVA_RECORD)
        .build()
    )
    jdk = (
        define("JDK", "1.6", extends="Java", driver="package")
        .output(
            "java",
            JAVA_RECORD,
            value=RecordExpr.of(
                home=Lit("/opt/jdk-1.6"),
                version=Lit("1.6"),
                kind=Lit("jdk"),
            ),
        )
        .build()
    )
    jre = (
        define("JRE", "1.6", extends="Java", driver="package")
        .output(
            "java",
            JAVA_RECORD,
            value=RecordExpr.of(
                home=Lit("/opt/jre-1.6"),
                version=Lit("1.6"),
                kind=Lit("jre"),
            ),
        )
        .build()
    )
    return [java, jdk, jre]


def tomcat_types() -> list[ResourceType]:
    """Tomcat 5.5 and 6.0.18 (two versions so the OpenMRS version-range
    dependency "at least 5.5 but before 6.0.29" is a real disjunction)."""
    types = []
    for version in TOMCAT_VERSIONS:
        types.append(
            define("Tomcat", version, driver="tomcat")
            .inside("Server", host="host")
            .input("host", HOST_RECORD)
            .env("Java", java="java")
            .input("java", JAVA_RECORD)
            .input("extra_config", STRING)  # reverse-filled by servlets
            .config("manager_port", TCP_PORT, 8080)
            .config("manager_user", STRING, "admin")
            .config("manager_password", PASSWORD, "tomcat-admin")
            .output(
                "tomcat",
                SERVLET_CONTAINER_RECORD,
                value=RecordExpr.of(
                    hostname=input_ref("host", "hostname"),
                    port=config_ref("manager_port"),
                    home=Lit(f"/opt/tomcat-{version}"),
                    manager_user=config_ref("manager_user"),
                    manager_password=config_ref("manager_password"),
                ),
            )
            .build()
        )
    return types


def _tomcat_range_inside(input_name: str = "tomcat") -> Dependency:
    """An inside dependency on any library Tomcat version, with the
    servlet's static ``webapp_config`` flowing back into Tomcat."""
    pmap = PortMapping.of(tomcat=input_name)
    reverse = PortMapping.of(webapp_config="extra_config")
    return Dependency(
        DependencyKind.INSIDE,
        tuple(
            DependencyAlternative(
                ResourceKey.parse(f"Tomcat {version}"), pmap, reverse
            )
            for version in TOMCAT_VERSIONS
        ),
    )


def openmrs_types() -> list[ResourceType]:
    """OpenMRS 1.8 (S2): servlet inside Tomcat, Java on the same machine,
    MySQL as a peer."""
    openmrs = (
        define("OpenMRS", "1.8", driver="openmrs")
        .inside_dep(_tomcat_range_inside())
        .input("tomcat", SERVLET_CONTAINER_RECORD)
        .env("Java", java="java")
        .input("java", JAVA_RECORD)
        .peer("MySQL 5.1", database="database")
        .input("database", DATABASE_RECORD)
        .config("context_path", STRING, "openmrs", static=True)
        .output(
            "webapp_config",
            STRING,
            value=Lit("conf/Catalina/localhost/openmrs.xml"),
            static=True,
        )
        .output(
            "url",
            STRING,
            value=Format.of(
                "http://{host}:{port}/openmrs",
                host=input_ref("tomcat", "hostname"),
                port=input_ref("tomcat", "port"),
            ),
        )
        .build()
    )
    return [openmrs]


def jasper_types() -> list[ResourceType]:
    """JasperReports Server 4.2 and the MySQL JDBC connector (S6.1)."""
    jdbc = (
        define("MySQL-JDBC-Connector", "5.1.17", driver="archive")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .output("jar_path", PATH, value=Lit(
            "/opt/mysql-jdbc-connector-5.1.17/mysql-connector-java.jar"
        ))
        .build()
    )
    jasper = (
        define("JasperReports-Server", "4.2", driver="jasper")
        .inside_dep(_tomcat_range_inside())
        .input("tomcat", SERVLET_CONTAINER_RECORD)
        .env("Java", java="java")
        .input("java", JAVA_RECORD)
        .env("MySQL-JDBC-Connector 5.1.17", jar_path="jdbc_jar")
        .input("jdbc_jar", PATH)
        .peer("MySQL 5.1", database="database")
        .input("database", DATABASE_RECORD)
        .output(
            "webapp_config",
            STRING,
            value=Lit("conf/Catalina/localhost/jasperserver.xml"),
            static=True,
        )
        .output(
            "url",
            STRING,
            value=Format.of(
                "http://{host}:{port}/jasperserver",
                host=input_ref("tomcat", "hostname"),
                port=input_ref("tomcat", "port"),
            ),
        )
        .build()
    )
    return [jdbc, jasper]


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


class JavaRuntimeDriver(PackageDriver):
    """JDK/JRE: a plain package install into /opt."""


class TomcatDriver(ServiceDriver):
    """Tomcat: install the distribution, write server.xml (including any
    reverse-pushed servlet context path), run the daemon on the manager
    port."""

    def listen_ports(self):
        return [self.context.config("manager_port")]

    def service_name(self) -> str:
        return f"tomcat-{self.context.instance.id}"

    def write_config_files(self) -> None:
        home = self.install_path()
        port = self.context.config("manager_port")
        extra = self.context.input("extra_config", "")
        lines = [
            f'<Server port="{port}">',
            f'  <User name="{self.context.config("manager_user")}"/>',
        ]
        if extra:
            lines.append(f'  <Context descriptor="{extra}"/>')
        lines.append("</Server>")
        fs = self.context.machine.fs
        fs.write_file(f"{home}/conf/server.xml", "\n".join(lines) + "\n")
        fs.mkdir(f"{home}/webapps")


class WebappDriver(ServiceDriver):
    """A servlet deployed inside Tomcat: unpack the war into the
    container's webapps directory; startup requires the container and the
    database to be accepting connections."""

    webapp_name = "webapp"

    def listen_ports(self):
        return []  # served through the container's port

    def service_name(self) -> str:
        return f"{self.webapp_name}-{self.context.instance.id}"

    def write_config_files(self) -> None:
        tomcat = self.context.input("tomcat")
        database = self.context.input("database")
        fs = self.context.machine.fs
        war_dir = f"{tomcat['home']}/webapps/{self.webapp_name}"
        fs.mkdir(war_dir)
        fs.write_file(
            f"{war_dir}/WEB-INF/connection.properties",
            f"db.url=jdbc:{database['engine']}://{database['host']}:"
            f"{database['port']}/{database['database']}\n"
            f"db.user={database['user']}\n",
        )

    def upstream_endpoints(self):
        tomcat = self.context.input("tomcat")
        database = self.context.input("database")
        endpoints = [(tomcat["hostname"], tomcat["port"])]
        if database["engine"] != "sqlite":
            endpoints.append((database["host"], database["port"]))
        return endpoints


class OpenMrsDriver(WebappDriver):
    webapp_name = "openmrs"


class JasperDriver(WebappDriver):
    webapp_name = "jasperserver"

    package_name = "jasperreports-server"

    def write_config_files(self) -> None:
        super().write_config_files()
        jar = self.context.input("jdbc_jar")
        tomcat = self.context.input("tomcat")
        self.context.machine.fs.write_file(
            f"{tomcat['home']}/lib/mysql-connector.link", f"{jar}\n"
        )


class JdbcConnectorDriver(ArchiveDriver):
    """The generic download-and-extract driver suffices (S6.1: "No
    additional Python code was required")."""


def register_java_drivers(drivers: DriverRegistry) -> None:
    drivers.register("tomcat", TomcatDriver)
    drivers.register("openmrs", OpenMrsDriver)
    drivers.register("jasper", JasperDriver)
