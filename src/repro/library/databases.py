"""Databases, key-value stores, caches, and the message broker.

``Database`` is an abstract type so application resources can depend on
"a database" and let the constraint solver (or the user's partial spec)
pick MySQL or SQLite -- the S6.2 configuration choice.  The stores the
Django platform offers as optional components (Redis, MongoDB,
memcached, RabbitMQ) and monit round out the catalogue.
"""

from __future__ import annotations

from repro.core.builder import define
from repro.core.ports import INT, PASSWORD, PATH, STRING, TCP_PORT
from repro.core.resource_type import ResourceType
from repro.core.values import Lit, RecordExpr, config_ref, input_ref
from repro.drivers.base import DriverRegistry
from repro.drivers.library import PackageDriver, ServiceDriver
from repro.library.base import (
    BROKER_RECORD,
    DATABASE_RECORD,
    HOST_RECORD,
    KV_RECORD,
)


def database_types() -> list[ResourceType]:
    """Abstract ``Database`` with MySQL and SQLite beneath it."""
    database = (
        define("Database", abstract=True, driver="package")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .config("database_name", STRING, "app")
        .output("database", DATABASE_RECORD)
        .build()
    )
    mysql = (
        define("MySQL", "5.1", extends="Database", driver="mysql")
        .config("port", TCP_PORT, 3306)
        .config("user", STRING, "root")
        .config("password", PASSWORD, "mysql-root")
        .output(
            "database",
            DATABASE_RECORD,
            value=RecordExpr.of(
                engine=Lit("mysql"),
                host=input_ref("host", "hostname"),
                port=config_ref("port"),
                database=config_ref("database_name"),
                user=config_ref("user"),
                password=config_ref("password"),
                path=Lit("/var/lib/mysql"),
            ),
        )
        .build()
    )
    postgres = (
        define("PostgreSQL", "8.4", extends="Database", driver="postgres")
        .config("port", TCP_PORT, 5432)
        .config("user", STRING, "postgres")
        .config("password", PASSWORD, "postgres")
        .output(
            "database",
            DATABASE_RECORD,
            value=RecordExpr.of(
                engine=Lit("postgres"),
                host=input_ref("host", "hostname"),
                port=config_ref("port"),
                database=config_ref("database_name"),
                user=config_ref("user"),
                password=config_ref("password"),
                path=Lit("/var/lib/postgresql"),
            ),
        )
        .build()
    )
    sqlite = (
        define("SQLite", "3.7", extends="Database", driver="sqlite")
        .config("data_dir", PATH, "/var/lib/sqlite")
        .output(
            "database",
            DATABASE_RECORD,
            value=RecordExpr.of(
                engine=Lit("sqlite"),
                host=Lit("localhost"),
                port=Lit(0),
                database=config_ref("database_name"),
                user=Lit(""),
                password=Lit(""),
                path=config_ref("data_dir"),
            ),
        )
        .build()
    )
    return [database, mysql, postgres, sqlite]


def store_types() -> list[ResourceType]:
    """Redis, MongoDB, memcached, RabbitMQ, and monit."""
    redis = (
        define("Redis", "2.4", driver="redis")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .config("port", TCP_PORT, 6379)
        .output(
            "kv",
            KV_RECORD,
            value=RecordExpr.of(
                kind=Lit("redis"),
                host=input_ref("host", "hostname"),
                port=config_ref("port"),
            ),
        )
        .build()
    )
    mongodb = (
        define("MongoDB", "2.0", driver="mongodb")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .config("port", TCP_PORT, 27017)
        .output(
            "kv",
            KV_RECORD,
            value=RecordExpr.of(
                kind=Lit("mongodb"),
                host=input_ref("host", "hostname"),
                port=config_ref("port"),
            ),
        )
        .build()
    )
    memcached = (
        define("Memcached", "1.4", driver="memcached")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .config("port", TCP_PORT, 11211)
        .config("memory_mb", INT, 64)
        .output(
            "kv",
            KV_RECORD,
            value=RecordExpr.of(
                kind=Lit("memcached"),
                host=input_ref("host", "hostname"),
                port=config_ref("port"),
            ),
        )
        .build()
    )
    rabbitmq = (
        define("RabbitMQ", "2.7", driver="rabbitmq")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .config("port", TCP_PORT, 5672)
        .config("user", STRING, "guest")
        .config("password", PASSWORD, "guest")
        .config("vhost", STRING, "/")
        .output(
            "broker",
            BROKER_RECORD,
            value=RecordExpr.of(
                host=input_ref("host", "hostname"),
                port=config_ref("port"),
                user=config_ref("user"),
                password=config_ref("password"),
                vhost=config_ref("vhost"),
            ),
        )
        .build()
    )
    monit = (
        define("Monit", "5.3", driver="monit")
        .inside("Server", host="host")
        .input("host", HOST_RECORD)
        .config("port", TCP_PORT, 2812)
        .output(
            "monit",
            KV_RECORD,
            value=RecordExpr.of(
                kind=Lit("monit"),
                host=input_ref("host", "hostname"),
                port=config_ref("port"),
            ),
        )
        .build()
    )
    return [redis, mongodb, memcached, rabbitmq, monit]


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


class MySqlDriver(ServiceDriver):
    """MySQL: package install, a data directory that *survives*
    uninstall (so upgrades preserve content, as in the FA case study),
    and a daemon on the configured port."""

    def service_name(self) -> str:
        return f"mysqld-{self.context.instance.id}"

    def write_config_files(self) -> None:
        fs = self.context.machine.fs
        if not fs.is_dir("/var/lib/mysql"):
            fs.mkdir("/var/lib/mysql")
        fs.write_file(
            "/etc/my.cnf",
            f"[mysqld]\nport={self.context.config('port')}\n",
        )

    def do_uninstall(self) -> None:
        # Remove the server package but keep /var/lib/mysql: dropping the
        # data directory on uninstall would destroy user content on every
        # worst-case upgrade.
        self.do_stop()
        name, _ = self.artifact()
        if self.context.package_manager.is_installed(name):
            self.context.package_manager.remove(
                name, owner=self.context.instance.id
            )


class PostgresDriver(ServiceDriver):
    """PostgreSQL: same data-directory discipline as MySQL."""

    def service_name(self) -> str:
        return f"postgres-{self.context.instance.id}"

    def write_config_files(self) -> None:
        fs = self.context.machine.fs
        if not fs.is_dir("/var/lib/postgresql"):
            fs.mkdir("/var/lib/postgresql")
        fs.write_file(
            "/etc/postgresql.conf",
            f"port = {self.context.config('port')}\n",
        )

    def do_uninstall(self) -> None:
        self.do_stop()
        name, _ = self.artifact()
        if self.context.package_manager.is_installed(name):
            self.context.package_manager.remove(
                name, owner=self.context.instance.id
            )


class SqliteDriver(PackageDriver):
    """SQLite: a library, not a daemon; ensures the data directory."""

    def do_install(self) -> None:
        super().do_install()
        fs = self.context.machine.fs
        data_dir = self.context.config("data_dir", "/var/lib/sqlite")
        if not fs.is_dir(data_dir):
            fs.mkdir(data_dir)

    def do_uninstall(self) -> None:
        # Keep the data directory, mirroring MySqlDriver.
        name, _ = self.artifact()
        if self.context.package_manager.is_installed(name):
            self.context.package_manager.remove(
                name, owner=self.context.instance.id
            )


class RedisDriver(ServiceDriver):
    def service_name(self) -> str:
        return f"redis-server-{self.context.instance.id}"


class MongoDbDriver(ServiceDriver):
    def service_name(self) -> str:
        return f"mongod-{self.context.instance.id}"


class MemcachedDriver(ServiceDriver):
    def service_name(self) -> str:
        return f"memcached-{self.context.instance.id}"


class RabbitMqDriver(ServiceDriver):
    def service_name(self) -> str:
        return f"rabbitmq-server-{self.context.instance.id}"


class MonitDriver(ServiceDriver):
    def service_name(self) -> str:
        return f"monit-{self.context.instance.id}"


def register_store_drivers(drivers: DriverRegistry) -> None:
    drivers.register("mysql", MySqlDriver)
    drivers.register("postgres", PostgresDriver)
    drivers.register("sqlite", SqliteDriver)
    drivers.register("redis", RedisDriver)
    drivers.register("mongodb", MongoDbDriver)
    drivers.register("memcached", MemcachedDriver)
    drivers.register("rabbitmq", RabbitMqDriver)
    drivers.register("monit", MonitDriver)
