"""Counters and histograms for deployment runs.

A :class:`MetricsRegistry` is the numeric side of the observability
layer: where the tracer records *what happened when*, the registry
aggregates *how much* -- actions performed, retries, backoff seconds
waited, scheduler queue depths, per-host concurrency.  Like the tracer
it costs nothing when not installed: sites only touch it behind the
``tracer is not None`` guard.

Histograms are summary-only (count/total/min/max); the simulated runs
this instruments are small enough that percentile buckets would be
noise, and the full distribution is recoverable from the trace events
anyway.
"""

from __future__ import annotations

from typing import Any, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """Summary statistics of an observed distribution."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """A flat namespace of counters and histograms, created on demand."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def counters(self) -> list[Counter]:
        return [self._counters[n] for n in sorted(self._counters)]

    def histograms(self) -> list[Histogram]:
        return [self._histograms[n] for n in sorted(self._histograms)]

    def to_payload(self) -> dict[str, Any]:
        """A JSON-ready snapshot (embedded in exported trace files)."""
        return {
            "counters": {c.name: c.value for c in self.counters()},
            "histograms": {
                h.name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.minimum,
                    "mean": h.mean,
                    "max": h.maximum,
                }
                for h in self.histograms()
            },
        }

    def render(self) -> str:
        """The plain-text summary (``engage-sim deploy --metrics``)."""
        lines = ["metrics:"]
        for counter in self.counters():
            lines.append(f"  {counter.name:<32} {counter.value}")
        for histogram in self.histograms():
            lines.append(
                f"  {histogram.name:<32} count={histogram.count} "
                f"total={histogram.total:.2f} min={histogram.minimum:.2f} "
                f"mean={histogram.mean:.2f} max={histogram.maximum:.2f}"
                if histogram.count
                else f"  {histogram.name:<32} count=0"
            )
        if len(lines) == 1:
            lines.append("  (no metrics recorded)")
        return "\n".join(lines) + "\n"
