"""Observability: structured tracing and metrics for deployment runs.

The pieces:

* :class:`Tracer` -- span + instant events with categories and
  deterministic simulated-time timestamps, carried on
  :class:`~repro.sim.infrastructure.Infrastructure` (``set_tracer``)
  and emitted from the deployment engine, the DAG scheduler, the fault
  plan, the monitor, the coordinator, and the configuration engine;
* :class:`MetricsRegistry` -- counters and histograms (actions,
  retries, backoff seconds, queue depth, per-host concurrency);
* :func:`chrome_trace` / :func:`write_trace` -- Chrome trace-event
  JSON export (Perfetto / ``chrome://tracing``), one thread lane per
  simulated host;
* :func:`validate_chrome_trace` -- the dependency-free schema check;
* :func:`trace_from_clock_events` -- after-the-fact rendering of a
  saved bundle's clock log + journal (``engage-sim trace``).

The whole layer is zero-overhead when disabled: no tracer installed
means every emitting site short-circuits on ``tracer is None`` and
reports, journals, and CLI output are bit-identical to an untraced run.
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    trace_from_clock_events,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.tracer import INSTANT, SPAN, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "INSTANT",
    "MetricsRegistry",
    "SPAN",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "chrome_trace_json",
    "trace_from_clock_events",
    "validate_chrome_trace",
    "write_trace",
]
