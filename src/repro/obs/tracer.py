"""Structured trace events over simulated time.

A :class:`Tracer` collects *span* events (a named stretch of simulated
time on one lane) and *instant* events (a point occurrence).  Timestamps
are simulated seconds read off the :class:`~repro.sim.clock.SimClock`
by the emitting site, so traces are deterministic: the same deployment
produces the same events in the same order, bit for bit.

The zero-overhead contract: nothing in this module is consulted unless
a tracer is installed.  Emitting sites hold an ``Optional[Tracer]`` and
guard every emission with ``if tracer is not None`` -- when no tracer is
installed the hot paths run exactly the pre-observability instruction
sequence, and reports/journals/CLI output are bit-identical.

Lanes become Chrome-trace "threads" on export
(:mod:`repro.obs.export`): one lane per simulated host (driver actions,
backoffs), plus dedicated lanes for the scheduler, the coordinator,
fault injection, and the configuration engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry

#: Event kinds (the ``phase`` field of a :class:`TraceEvent`).
SPAN = "span"
INSTANT = "instant"


@dataclass
class TraceEvent:
    """One structured event: a span of simulated time or an instant.

    ``seq`` is assigned by the tracer and is the deterministic
    tie-breaker for events at the same simulated instant.
    """

    name: str
    category: str
    phase: str
    timestamp: float
    duration: float = 0.0
    lane: str = "main"
    args: dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    @property
    def end(self) -> float:
        return self.timestamp + self.duration


class Tracer:
    """Collects trace events and aggregates metrics for one run.

    ``clock`` (a :class:`~repro.sim.clock.SimClock`, optional) supplies
    default timestamps for :meth:`instant`; sites that know their own
    timestamps pass them explicitly.  A :class:`MetricsRegistry` rides
    along so emitting sites update counters/histograms behind the same
    single ``tracer is not None`` guard.
    """

    def __init__(
        self,
        clock=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events: list[TraceEvent] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def _append(self, event: TraceEvent) -> TraceEvent:
        event.seq = self._seq
        self._seq += 1
        self.events.append(event)
        return event

    def span(
        self,
        name: str,
        *,
        category: str,
        start: float,
        duration: float,
        lane: str = "main",
        **args: Any,
    ) -> TraceEvent:
        """Record a completed stretch of simulated work."""
        return self._append(
            TraceEvent(name, category, SPAN, start, duration, lane, args)
        )

    def instant(
        self,
        name: str,
        *,
        category: str,
        timestamp: Optional[float] = None,
        lane: str = "main",
        **args: Any,
    ) -> TraceEvent:
        """Record a point event (defaults to the clock's current time)."""
        if timestamp is None:
            timestamp = self.clock.now if self.clock is not None else 0.0
        return self._append(
            TraceEvent(name, category, INSTANT, timestamp, 0.0, lane, args)
        )

    # -- Introspection ---------------------------------------------------

    def sorted_events(self) -> list[TraceEvent]:
        """Events ordered by (timestamp, emission order).

        Overlapping worker spans are emitted with their own local
        timestamps, so the raw list is not time-ordered; the sort is
        deterministic because ``seq`` breaks simulated-time ties.
        """
        return sorted(self.events, key=lambda e: (e.timestamp, e.seq))

    def spans(self, category: Optional[str] = None) -> list[TraceEvent]:
        return [
            e for e in self.events
            if e.phase == SPAN and (category is None or e.category == category)
        ]

    def instants(self, category: Optional[str] = None) -> list[TraceEvent]:
        return [
            e for e in self.events
            if e.phase == INSTANT
            and (category is None or e.category == category)
        ]
