"""Trace exporters: Chrome trace-event JSON and plain text.

:func:`chrome_trace` converts collected :class:`~repro.obs.tracer.TraceEvent`
values into the Chrome trace-event format (the JSON array flavour with a
``traceEvents`` envelope), loadable in Perfetto or ``chrome://tracing``.
Each tracer *lane* becomes one "thread" of a single ``engage-sim``
process, so parallel deployments render as overlapping per-host
timelines.  Simulated seconds become microseconds (the unit the format
mandates).

:func:`validate_chrome_trace` is the schema check used by the test
suite and CI -- a dependency-free structural validator rather than a
jsonschema document, since the container ships no validator library.

:func:`trace_from_clock_events` rebuilds trace events from a
:class:`~repro.sim.clock.SimClock` event log plus a deployment journal,
which is how ``engage-sim trace`` renders a *saved bundle* into a trace
file after the fact.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Optional

from repro.obs.tracer import INSTANT, SPAN, TraceEvent, Tracer

#: The single simulated process all lanes belong to.
_PID = 1


def _lane_ids(events: list[TraceEvent]) -> dict[str, int]:
    """Lane name -> Chrome thread id, in sorted-name order (stable)."""
    return {lane: tid for tid, lane in enumerate(
        sorted({event.lane for event in events}), start=1
    )}


def chrome_trace(
    source: "Tracer | Iterable[TraceEvent]",
    *,
    metadata: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """Export events as a Chrome trace-event JSON object."""
    if isinstance(source, Tracer):
        events = source.sorted_events()
        if metadata is None:
            metadata = {"metrics": source.metrics.to_payload()}
    else:
        events = sorted(source, key=lambda e: (e.timestamp, e.seq))
    lanes = _lane_ids(events)
    trace_events: list[dict[str, Any]] = [
        {
            "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
            "args": {"name": "engage-sim"},
        }
    ]
    for lane, tid in lanes.items():
        trace_events.append(
            {
                "ph": "M", "pid": _PID, "tid": tid, "name": "thread_name",
                "args": {"name": lane},
            }
        )
    for event in events:
        payload: dict[str, Any] = {
            "name": event.name,
            "cat": event.category,
            "pid": _PID,
            "tid": lanes[event.lane],
            "ts": round(event.timestamp * 1e6, 3),
        }
        if event.phase == SPAN:
            payload["ph"] = "X"
            payload["dur"] = round(event.duration * 1e6, 3)
        else:
            payload["ph"] = "i"
            payload["s"] = "t"  # thread-scoped instant
        if event.args:
            payload["args"] = dict(event.args)
        trace_events.append(payload)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata) if metadata else {},
    }


def chrome_trace_json(
    source: "Tracer | Iterable[TraceEvent]",
    *,
    metadata: Optional[Mapping[str, Any]] = None,
) -> str:
    return json.dumps(chrome_trace(source, metadata=metadata), indent=1) + "\n"


def write_trace(
    path: str,
    source: "Tracer | Iterable[TraceEvent]",
    *,
    metadata: Optional[Mapping[str, Any]] = None,
) -> None:
    """Write a Chrome trace-event JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(source, metadata=metadata))


# -- Validation ---------------------------------------------------------

_PHASES = {"X", "i", "M"}
_INSTANT_SCOPES = {"g", "p", "t"}


def validate_chrome_trace(payload: Any) -> list[str]:
    """Structural schema check; returns problems (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: 'name' must be a string")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key!r} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: 'ts' must be a number")
        if not isinstance(event.get("cat"), str):
            problems.append(f"{where}: 'cat' must be a string")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(
                    f"{where}: 'dur' must be a non-negative number"
                )
        elif event.get("s") not in _INSTANT_SCOPES:
            problems.append(f"{where}: instant scope {event.get('s')!r}")
    return problems


# -- After-the-fact rendering (``engage-sim trace``) --------------------


def trace_from_clock_events(
    clock_events: Iterable[Any],
    *,
    journal_entries: Iterable[Any] = (),
    lane_of: Optional[Mapping[str, str]] = None,
) -> list[TraceEvent]:
    """Rebuild trace events from a clock log and a journal.

    ``clock_events`` are :class:`~repro.sim.clock.ClockEvent`-shaped
    (``start``/``duration``/``label``); ``journal_entries`` are
    :class:`~repro.runtime.journal.JournalEntry`-shaped.  ``lane_of``
    maps instance ids to lane names (typically hostnames); labels whose
    ``prefix:rest`` tail resolves through it land on that lane, the
    rest collect on a ``clock`` (or ``faults``) lane.  Clock labels are
    ``action:instance`` for driver actions, ``backoff:instance:action``
    for retry waits, and ``fault-*:site`` for injected hangs.
    """
    lane_of = lane_of or {}
    events: list[TraceEvent] = []
    seq = 0
    for clock_event in clock_events:
        label = clock_event.label or "advance"
        prefix, _, rest = label.partition(":")
        instance = rest.split(":", 1)[0] if rest else ""
        name, category, lane = label, "clock", "clock"
        if prefix.startswith("fault-"):
            category, lane = "fault", "faults"
        elif instance in lane_of:
            name = prefix
            category = "backoff" if prefix == "backoff" else "action"
            lane = lane_of[instance]
        args = {"instance": instance} if instance in lane_of else {}
        events.append(
            TraceEvent(
                name, category, SPAN, clock_event.start,
                clock_event.duration, lane, args, seq,
            )
        )
        seq += 1
    for entry in journal_entries:
        events.append(
            TraceEvent(
                "record", "journal", INSTANT, entry.timestamp, 0.0,
                lane_of.get(entry.instance_id, "journal"),
                {
                    "instance": entry.instance_id,
                    "action": entry.action,
                    "source": entry.source,
                    "target": entry.target,
                },
                seq,
            )
        )
        seq += 1
    return events
