"""The Django application driver (S6.2).

Install unpacks the application archive (pre-defined layout), writes
``settings.py`` from the propagated configuration, and runs the pending
South-style migrations against the configured database.  Start verifies
the database / store / broker endpoints accept connections and spawns the
WSGI worker process.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import DriverError
from repro.django.migrations import (
    MigrationEngine,
    MigrationError,
    SimDatabase,
    migrations_from_json,
)
from repro.drivers.base import DriverRegistry
from repro.drivers.library import ServiceDriver


class DjangoAppDriver(ServiceDriver):
    """Generic driver for every generated Django application type."""

    def artifact(self) -> tuple[str, str]:
        app_name = str(self.context.config("app_name"))
        app_version = str(self.context.config("app_version"))
        return f"django-app-{app_name.lower()}", app_version

    def listen_ports(self):
        return []  # requests arrive through the web server

    def service_name(self) -> str:
        return f"wsgi-{self.context.instance.id}"

    # -- Install -----------------------------------------------------------

    def do_install(self) -> None:
        super().do_install()
        self._write_settings()
        self._run_migrations()

    def _write_settings(self) -> None:
        database = self.context.input("database")
        webserver = self.context.input("webserver")
        app_name = self.context.config("app_name")
        lines = [
            f"APP_NAME = {app_name!r}",
            f"DEBUG = {self.context.config('debug')}",
            f"SECRET_KEY = {self.context.config('secret_key')!r}",
            f"DATABASE_ENGINE = {database['engine']!r}",
            f"DATABASE_HOST = {database['host']!r}",
            f"DATABASE_PORT = {database['port']}",
            f"DATABASE_NAME = {database['database']!r}",
            f"SERVED_BY = {webserver['kind']!r}",
        ]
        self.context.machine.fs.write_file(
            f"{self.install_path()}/settings.py", "\n".join(lines) + "\n"
        )

    def database(self) -> SimDatabase:
        """The application's database handle: SQLite lives on this
        machine's filesystem; MySQL on the (possibly remote) database
        host's."""
        database = self.context.input("database")
        if database["engine"] == "sqlite":
            fs = self.context.machine.fs
            directory = database["path"]
        else:
            network = self.context.infrastructure.network
            fs = network.machine(database["host"]).fs
            directory = database["path"]
        return SimDatabase(fs, f"{directory}/{database['database']}.json")

    def _run_migrations(self) -> None:
        app_name = str(self.context.config("app_name"))
        migrations_path = f"{self.install_path()}/{app_name}/migrations.json"
        fs = self.context.machine.fs
        if not fs.is_file(migrations_path):
            return
        migrations = migrations_from_json(fs.read_file(migrations_path))
        engine = MigrationEngine(self.database())
        try:
            engine.migrate(migrations)
        except MigrationError as exc:
            raise DriverError(
                f"{self.context.instance.id}: migration failed: {exc}"
            ) from exc

    # -- Start -------------------------------------------------------------

    def upstream_endpoints(self) -> Sequence[tuple[str, int]]:
        endpoints: list[tuple[str, int]] = []
        database = self.context.input("database")
        if database["engine"] != "sqlite":
            endpoints.append((database["host"], database["port"]))
        for record_name in ("redis", "mongodb", "cache"):
            record = self.context.input(record_name)
            if record:
                endpoints.append((record["host"], record["port"]))
        celery = self.context.input("celery")
        if celery:
            endpoints.append((celery["broker_host"], celery["broker_port"]))
        return endpoints


def register_django_app_driver(drivers: DriverRegistry) -> None:
    drivers.register("django-app", DjangoAppDriver)
