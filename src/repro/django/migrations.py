"""Schema migrations: the South substitute (S6.2).

"We use South, a database migration framework, in the Engage Django
driver to support application upgrades involving database schema
changes.  Using South, we were able to automatically upgrade from the old
version to the new version of the application, while preserving the
content in the database."

The simulated database is a JSON document on a machine's virtual
filesystem (one file per logical database), giving it exactly the
property the experiment needs: it survives package uninstall/reinstall
and is captured by machine snapshots, so upgrade rollback restores it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.errors import SimulationError
from repro.sim.filesystem import VirtualFilesystem

APPLIED_TABLE = "_applied_migrations"


class MigrationError(SimulationError):
    """A migration operation failed (possibly injected)."""


class SimDatabase:
    """A toy relational store persisted as JSON in a virtual filesystem."""

    def __init__(self, fs: VirtualFilesystem, path: str) -> None:
        self._fs = fs
        self._path = path

    def _load(self) -> dict[str, Any]:
        if not self._fs.is_file(self._path):
            return {"tables": {}}
        return json.loads(self._fs.read_file(self._path))

    def _store(self, data: dict[str, Any]) -> None:
        self._fs.write_file(self._path, json.dumps(data, indent=1, sort_keys=True))

    # -- Schema ----------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> None:
        data = self._load()
        if name in data["tables"]:
            raise MigrationError(f"table already exists: {name}")
        data["tables"][name] = {"columns": list(columns), "rows": []}
        self._store(data)

    def drop_table(self, name: str) -> None:
        data = self._load()
        if name not in data["tables"]:
            raise MigrationError(f"no such table: {name}")
        del data["tables"][name]
        self._store(data)

    def add_column(self, table: str, column: str, default: Any = None) -> None:
        data = self._load()
        info = data["tables"].get(table)
        if info is None:
            raise MigrationError(f"no such table: {table}")
        if column in info["columns"]:
            raise MigrationError(f"column exists: {table}.{column}")
        info["columns"].append(column)
        for row in info["rows"]:
            row[column] = default
        self._store(data)

    def tables(self) -> list[str]:
        return sorted(self._load()["tables"])

    def columns(self, table: str) -> list[str]:
        info = self._load()["tables"].get(table)
        if info is None:
            raise MigrationError(f"no such table: {table}")
        return list(info["columns"])

    # -- Rows ------------------------------------------------------------

    def insert(self, table: str, row: dict[str, Any]) -> None:
        data = self._load()
        info = data["tables"].get(table)
        if info is None:
            raise MigrationError(f"no such table: {table}")
        unknown = set(row) - set(info["columns"])
        if unknown:
            raise MigrationError(f"unknown columns for {table}: {sorted(unknown)}")
        full_row = {c: row.get(c) for c in info["columns"]}
        info["rows"].append(full_row)
        self._store(data)

    def rows(self, table: str) -> list[dict[str, Any]]:
        info = self._load()["tables"].get(table)
        if info is None:
            raise MigrationError(f"no such table: {table}")
        return [dict(r) for r in info["rows"]]

    def count(self, table: str) -> int:
        return len(self.rows(table))


# ---------------------------------------------------------------------------
# Migration operations and engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Operation:
    """One schema operation, JSON-serialisable for app archives.

    ``op`` is one of ``create_table``, ``add_column``, ``drop_table``,
    ``insert``, or ``fail`` (failure injection for rollback tests).
    """

    op: str
    table: str = ""
    columns: tuple[str, ...] = ()
    column: str = ""
    default: Any = None
    row: Optional[dict[str, Any]] = None
    message: str = ""

    def apply(self, database: SimDatabase) -> None:
        if self.op == "create_table":
            database.create_table(self.table, self.columns)
        elif self.op == "add_column":
            database.add_column(self.table, self.column, self.default)
        elif self.op == "drop_table":
            database.drop_table(self.table)
        elif self.op == "insert":
            database.insert(self.table, self.row or {})
        elif self.op == "fail":
            raise MigrationError(self.message or "injected migration failure")
        else:
            raise MigrationError(f"unknown operation: {self.op!r}")

    def to_json(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "table": self.table,
            "columns": list(self.columns),
            "column": self.column,
            "default": self.default,
            "row": self.row,
            "message": self.message,
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "Operation":
        return Operation(
            op=data["op"],
            table=data.get("table", ""),
            columns=tuple(data.get("columns") or ()),
            column=data.get("column", ""),
            default=data.get("default"),
            row=data.get("row"),
            message=data.get("message", ""),
        )


@dataclass(frozen=True)
class Migration:
    """A named, ordered list of operations (e.g. ``0001_initial``)."""

    name: str
    operations: tuple[Operation, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "operations": [op.to_json() for op in self.operations],
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "Migration":
        return Migration(
            name=data["name"],
            operations=tuple(
                Operation.from_json(op) for op in data["operations"]
            ),
        )


def migrations_to_json(migrations: Sequence[Migration]) -> str:
    return json.dumps([m.to_json() for m in migrations], indent=1)


def migrations_from_json(text: str) -> list[Migration]:
    return [Migration.from_json(m) for m in json.loads(text)]


class MigrationEngine:
    """Applies pending migrations in order, recording applied names in
    the database itself (like South's ``south_migrationhistory``)."""

    def __init__(self, database: SimDatabase) -> None:
        self._database = database

    def applied(self) -> list[str]:
        if APPLIED_TABLE not in self._database.tables():
            return []
        return [row["name"] for row in self._database.rows(APPLIED_TABLE)]

    def migrate(self, migrations: Sequence[Migration]) -> list[str]:
        """Apply every not-yet-applied migration; returns the names newly
        applied.  Raises :class:`MigrationError` on the first failure
        (already-applied work stays recorded -- rollback is the upgrade
        engine's job, via machine snapshots)."""
        if APPLIED_TABLE not in self._database.tables():
            self._database.create_table(APPLIED_TABLE, ["name"])
        already = set(self.applied())
        newly_applied: list[str] = []
        for migration in migrations:
            if migration.name in already:
                continue
            for operation in migration.operations:
                operation.apply(self._database)
            self._database.insert(APPLIED_TABLE, {"name": migration.name})
            newly_applied.append(migration.name)
        return newly_applied
