"""Django application definitions, including the Table 1 corpus.

The paper evaluated eight applications (Table 1): Areneae, Buzzfire,
Codespeed, Django-Blog, Django-CMS, FA, Feature Collector, and WebApp.
The originals are third-party code we cannot ship; these synthetic
definitions preserve the structural properties Table 1 reports (package
dependency counts, Redis/Celery/caching usage, production scale) -- which
is exactly what the experiment tests: "All eight applications were
deployable by Engage without requiring any application-specific
deployment code."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.django.migrations import Migration, Operation


@dataclass(frozen=True)
class DjangoAppDefinition:
    """Everything the packager extracts from a Django project."""

    name: str
    version: str
    description: str = ""
    source: str = "internal"
    loc: int = 1000
    pip_packages: tuple[tuple[str, str], ...] = ()
    uses_redis: bool = False
    uses_celery: bool = False
    uses_memcached: bool = False
    uses_mongodb: bool = False
    migrations: tuple[Migration, ...] = ()

    def archive_name(self) -> str:
        return f"django-app-{self.name.lower()}"

    def key_display(self) -> str:
        return f"DjangoApp-{self.name} {self.version}"


def _initial_migration(table: str, columns: Sequence[str]) -> Migration:
    return Migration(
        "0001_initial",
        (Operation("create_table", table=table, columns=tuple(columns)),),
    )


def table1_apps() -> list[DjangoAppDefinition]:
    """The eight applications of Table 1."""
    return [
        DjangoAppDefinition(
            name="Areneae",
            version="1.0",
            description="Simple test app",
            source="beta tester",
            loc=800,
            pip_packages=(("simplejson", "2.1"),),
            migrations=(_initial_migration("notes", ["id", "text"]),),
        ),
        DjangoAppDefinition(
            name="Buzzfire",
            version="1.0",
            description="Twitter bookmark and ranking app",
            source="open source",
            loc=3200,
            pip_packages=(("tweepy", "1.7"), ("simplejson", "2.1")),
            uses_redis=True,
            migrations=(
                _initial_migration("bookmarks", ["id", "url", "score"]),
            ),
        ),
        DjangoAppDefinition(
            name="Codespeed",
            version="0.8",
            description="Web application performance monitor",
            source="open source",
            loc=5100,
            pip_packages=(("matplotlib-lite", "0.9"), ("isodate", "0.4")),
            migrations=(
                _initial_migration("benchmarks", ["id", "name", "value"]),
            ),
        ),
        DjangoAppDefinition(
            name="Django-Blog",
            version="2.1",
            description="Blogging platform (18 pip dependencies)",
            source="beta tester",
            loc=4400,
            pip_packages=tuple(
                (f"blog-dep-{i:02d}", "1.0") for i in range(1, 19)
            ),
            migrations=(
                _initial_migration("posts", ["id", "title", "body"]),
            ),
        ),
        DjangoAppDefinition(
            name="Django-CMS",
            version="2.2",
            description="Content management system",
            source="open source",
            loc=9200,
            pip_packages=(
                ("pil-lite", "1.1"),
                ("html5lib", "0.90"),
                ("classytags", "0.3"),
            ),
            uses_memcached=True,
            migrations=(
                _initial_migration("pages", ["id", "slug", "content"]),
            ),
        ),
        DjangoAppDefinition(
            name="FA",
            version="1.0",
            description="Faculty, student, and postdoc applications",
            source="beta tester",
            loc=6100,
            pip_packages=(("xlwt", "0.7"), ("simplejson", "2.1")),
            migrations=(
                _initial_migration(
                    "applicants", ["id", "name", "area"]
                ),
            ),
        ),
        DjangoAppDefinition(
            name="Feature-Collector",
            version="1.0",
            description="Gather software feature requests",
            source="internal",
            loc=1900,
            pip_packages=(("simplejson", "2.1"),),
            migrations=(
                _initial_migration("features", ["id", "title", "votes"]),
            ),
        ),
        DjangoAppDefinition(
            name="WebApp",
            version="3.0",
            description="Production site of the Django hosting company",
            source="internal",
            loc=4000,
            pip_packages=(
                ("boto-lite", "2.0"),
                ("simplejson", "2.1"),
                ("requests-lite", "0.8"),
                ("django-celery", "2.4"),
                ("django-kombu", "0.9"),
                ("python-memcached", "1.47"),
                ("redis-py", "2.4"),
                ("django-cron", "0.3"),
                ("pytz", "2011"),
                ("south-utils", "0.7"),
            ),
            uses_redis=True,
            uses_celery=True,
            uses_memcached=True,
            migrations=(
                _initial_migration(
                    "customers", ["id", "email", "plan"]
                ),
            ),
        ),
    ]


def fa_snapshots() -> tuple[DjangoAppDefinition, DjangoAppDefinition]:
    """The two FA production snapshots of the upgrade experiment (S6.2):
    "the user interface, application logic, and database schema all
    changed" between them."""
    fa_v1 = next(app for app in table1_apps() if app.name == "FA")
    fa_v2 = DjangoAppDefinition(
        name="FA",
        version="2.0",
        description=fa_v1.description + " (second snapshot)",
        source=fa_v1.source,
        loc=fa_v1.loc + 900,
        pip_packages=fa_v1.pip_packages + (("reportlab-lite", "2.5"),),
        migrations=fa_v1.migrations
        + (
            Migration(
                "0002_add_decision",
                (
                    Operation(
                        "add_column",
                        table="applicants",
                        column="decision",
                        default="pending",
                    ),
                ),
            ),
        ),
    )
    return fa_v1, fa_v2


def fa_broken_snapshot() -> DjangoAppDefinition:
    """FA v2 with an injected migration error: "If we introduce an error
    in the second application version that causes the upgrade to fail,
    Engage automatically rolls back to the prior application version."""
    _, fa_v2 = fa_snapshots()
    return DjangoAppDefinition(
        name="FA",
        version="2.1",
        description=fa_v2.description + " (broken)",
        source=fa_v2.source,
        loc=fa_v2.loc,
        pip_packages=fa_v2.pip_packages,
        migrations=fa_v2.migrations
        + (
            Migration(
                "0003_broken",
                (
                    Operation(
                        "fail",
                        message="schema change conflicts with data",
                    ),
                ),
            ),
        ),
    )
