"""Django platform support (S6.2): the application packager, the
South-style migration engine, the generic application driver, and the
Table 1 application corpus."""

from repro.django.apps import (
    DjangoAppDefinition,
    fa_broken_snapshot,
    fa_snapshots,
    table1_apps,
)
from repro.django.driver import DjangoAppDriver, register_django_app_driver
from repro.django.migrations import (
    APPLIED_TABLE,
    Migration,
    MigrationEngine,
    MigrationError,
    Operation,
    SimDatabase,
    migrations_from_json,
    migrations_to_json,
)
from repro.django.packager import (
    app_resource_key,
    generate_app_type,
    package_application,
    publish_app_artifacts,
    validate_application,
)

__all__ = [
    "APPLIED_TABLE",
    "DjangoAppDefinition",
    "DjangoAppDriver",
    "Migration",
    "MigrationEngine",
    "MigrationError",
    "Operation",
    "SimDatabase",
    "app_resource_key",
    "fa_broken_snapshot",
    "fa_snapshots",
    "generate_app_type",
    "migrations_from_json",
    "migrations_to_json",
    "package_application",
    "publish_app_artifacts",
    "register_django_app_driver",
    "table1_apps",
    "validate_application",
]
