"""The Django application packager (S6.2).

"We built an application packager that validates a Django application,
extracts some metadata used by Engage, and packages the application into
an archive with a pre-defined layout.  This application can then be
deployed by Engage to the cloud or a local machine."

:func:`package_application` does three things:

1. *validate* the application definition (name, version, dependencies);
2. *generate* a resource type extending the abstract ``Django-App`` with
   environment dependencies on the application's pip packages (and South
   when it carries migrations) and peer dependencies on the optional
   services it uses;
3. *publish* the application archive -- including the serialised
   migrations, which the driver reads back from the unpacked files -- and
   the pip artifacts into the package index.

The per-application resource types are generated, never hand-written:
that is how "all eight applications were deployable by Engage without
requiring any application-specific deployment code".
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.builder import ResourceTypeBuilder, define
from repro.core.errors import SpecError
from repro.core.keys import ResourceKey
from repro.core.ports import STRING
from repro.core.registry import ResourceTypeRegistry
from repro.core.resource_type import ResourceType
from repro.core.values import Lit
from repro.django.apps import DjangoAppDefinition
from repro.django.migrations import migrations_to_json
from repro.library.base import CELERY_RECORD, KV_RECORD, ensure_artifact
from repro.library.django_stack import pip_package_type
from repro.sim.infrastructure import Infrastructure

_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_-]*$")

#: Simulated archive bytes per line of application code.
_BYTES_PER_LOC = 120


def validate_application(app: DjangoAppDefinition) -> list[str]:
    """Packager validation: returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not _NAME_RE.match(app.name):
        problems.append(f"invalid application name: {app.name!r}")
    if not app.version or not app.version[0].isdigit():
        problems.append(f"invalid version: {app.version!r}")
    seen: set[str] = set()
    for package_name, package_version in app.pip_packages:
        if not _NAME_RE.match(package_name):
            problems.append(f"invalid pip package name: {package_name!r}")
        if package_name in seen:
            problems.append(f"duplicate pip dependency: {package_name!r}")
        seen.add(package_name)
        if not package_version:
            problems.append(f"pip package {package_name!r} has no version")
    migration_names = [m.name for m in app.migrations]
    if len(migration_names) != len(set(migration_names)):
        problems.append("duplicate migration names")
    return problems


def app_resource_key(app: DjangoAppDefinition) -> ResourceKey:
    return ResourceKey.parse(app.key_display())


def generate_app_type(app: DjangoAppDefinition) -> tuple[ResourceType, list[ResourceType]]:
    """The generated resource type for ``app``, plus any pip-package
    types it depends on (callers register whichever are new)."""
    builder: ResourceTypeBuilder = define(
        f"DjangoApp-{app.name}",
        app.version,
        extends="Django-App",
        driver="django-app",
    )
    builder.config("app_name", STRING, app.name, static=True)
    builder.config("app_version", STRING, app.version, static=True)

    pip_types: list[ResourceType] = []
    for package_name, package_version in app.pip_packages:
        pip_type = pip_package_type(package_name, package_version)
        pip_types.append(pip_type)
        input_name = "pkg_" + re.sub(r"[^a-z0-9]+", "_", package_name.lower())
        builder.input(input_name, STRING)
        builder.env(pip_type.key, **{"module": input_name})
    if app.migrations:
        builder.input("south_version", STRING)
        builder.env("South 0.7", south_version="south_version")

    if app.uses_redis:
        builder.input("redis", KV_RECORD)
        builder.peer("Redis 2.4", kv="redis")
    if app.uses_mongodb:
        builder.input("mongodb", KV_RECORD)
        builder.peer("MongoDB 2.0", kv="mongodb")
    if app.uses_memcached:
        builder.input("cache", KV_RECORD)
        builder.peer("Memcached 1.4", kv="cache")
    if app.uses_celery:
        builder.input("celery", CELERY_RECORD)
        builder.peer("Celery 2.4", celery="celery")

    return builder.build(), pip_types


def publish_app_artifacts(
    app: DjangoAppDefinition, infrastructure: Infrastructure
) -> None:
    """Publish the application archive (with its migrations inside, in
    the pre-defined layout) and its pip dependencies."""
    index = infrastructure.package_index
    archive = app.archive_name()
    if not index.has(archive, app.version):
        index.publish(_app_artifact(app))
    for package_name, package_version in app.pip_packages:
        ensure_artifact(
            infrastructure, f"pypi-{package_name.lower()}", package_version
        )


def _app_artifact(app: DjangoAppDefinition):
    from repro.sim.package_index import PackageArtifact

    return PackageArtifact(
        name=app.archive_name(),
        version=app.version,
        size_bytes=max(app.loc * _BYTES_PER_LOC, 50_000),
        files=(
            (f"{app.name}/engage_app.json",
             f'{{"name": "{app.name}", "version": "{app.version}"}}'),
            (f"{app.name}/migrations.json",
             migrations_to_json(list(app.migrations))),
        ),
    )


def package_application(
    app: DjangoAppDefinition,
    registry: ResourceTypeRegistry,
    infrastructure: Infrastructure,
) -> ResourceKey:
    """Validate, generate, register, and publish; returns the key of the
    generated resource type."""
    problems = validate_application(app)
    if problems:
        raise SpecError(
            f"application {app.name} failed packager validation:\n  "
            + "\n  ".join(problems)
        )
    app_type, pip_types = generate_app_type(app)
    for pip_type in pip_types:
        if not registry.has(pip_type.key):
            registry.register(pip_type)
    if not registry.has(app_type.key):
        registry.register(app_type)
    publish_app_artifacts(app, infrastructure)
    return app_type.key
