"""Cardinality encodings, chiefly the paper's exactly-one predicate.

S4 defines ``(+)S`` ("exactly one proposition from the set S is true") as

    (+)S  =  (\\/ p in S) /\\ (/\\ p,q in S, q != p : p -> not q)

That textbook *pairwise* encoding is quadratic in |S|.  We also provide
the *sequential* (commander/ladder) encoding, linear in |S| with one
auxiliary variable per element, as the ablation target of experiment E12.
"""

from __future__ import annotations

from enum import Enum
from itertools import combinations
from typing import Sequence

from repro.sat.cnf import CnfFormula


class ExactlyOneEncoding(Enum):
    PAIRWISE = "pairwise"
    SEQUENTIAL = "sequential"


def at_least_one(formula: CnfFormula, literals: Sequence[int]) -> None:
    formula.add_clause(literals)


def at_most_one_pairwise(formula: CnfFormula, literals: Sequence[int]) -> None:
    """``p -> not q`` for every unordered pair (the paper's definition)."""
    for p, q in combinations(literals, 2):
        formula.add_clause([-p, -q])


def at_most_one_sequential(formula: CnfFormula, literals: Sequence[int]) -> None:
    """Sinz's sequential counter restricted to the <=1 case.

    Introduces registers ``s_i`` meaning "one of literals[0..i] is true":

        l_i -> s_i ;  s_{i-1} -> s_i ;  l_i /\\ s_{i-1} -> false
    """
    n = len(literals)
    if n <= 1:
        return
    if n <= 3:
        # Pairwise is smaller than the counter at tiny sizes.
        at_most_one_pairwise(formula, literals)
        return
    registers = [formula.new_var() for _ in range(n - 1)]
    formula.add_implies(literals[0], registers[0])
    for i in range(1, n - 1):
        formula.add_implies(literals[i], registers[i])
        formula.add_implies(registers[i - 1], registers[i])
        formula.add_clause([-literals[i], -registers[i - 1]])
    formula.add_clause([-literals[n - 1], -registers[n - 2]])


def exactly_one(
    formula: CnfFormula,
    literals: Sequence[int],
    encoding: ExactlyOneEncoding = ExactlyOneEncoding.PAIRWISE,
) -> None:
    """Assert that exactly one of ``literals`` is true."""
    at_least_one(formula, literals)
    if encoding == ExactlyOneEncoding.PAIRWISE:
        at_most_one_pairwise(formula, literals)
    else:
        at_most_one_sequential(formula, literals)


def implies_exactly_one(
    formula: CnfFormula,
    antecedent: int,
    literals: Sequence[int],
    encoding: ExactlyOneEncoding = ExactlyOneEncoding.PAIRWISE,
) -> None:
    """The hyperedge constraint of S4:

        rsrc(v) -> (+){rsrc(v1), ..., rsrc(vn)}

    i.e. under ``antecedent``, at least one target holds, and no two
    targets hold together.  The at-most-one part need not be guarded by
    the antecedent to preserve Theorem 1 -- a *guarded* at-most-one is
    used instead so deployments may include sibling alternatives required
    by other resources.
    """
    formula.add_implies_clause(antecedent, literals)
    if encoding == ExactlyOneEncoding.PAIRWISE:
        for p, q in combinations(literals, 2):
            formula.add_clause([-antecedent, -p, -q])
    else:
        # Guard the sequential encoding with a fresh relay variable that is
        # equivalent to the antecedent for these registers.
        n = len(literals)
        if n <= 1:
            return
        if n <= 3:
            for p, q in combinations(literals, 2):
                formula.add_clause([-antecedent, -p, -q])
            return
        registers = [formula.new_var() for _ in range(n - 1)]
        formula.add_clause([-antecedent, -literals[0], registers[0]])
        for i in range(1, n - 1):
            formula.add_clause([-antecedent, -literals[i], registers[i]])
            formula.add_clause([-antecedent, -registers[i - 1], registers[i]])
            formula.add_clause([-antecedent, -literals[i], -registers[i - 1]])
        formula.add_clause([-antecedent, -literals[n - 1], -registers[n - 2]])
