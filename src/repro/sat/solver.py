"""A CDCL SAT solver (the MiniSat substitute).

The paper: "We use the MiniSat satisfiability solver to solve Boolean
constraints."  This module is a from-scratch conflict-driven clause
learning solver with the standard MiniSat ingredients:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and backjumping,
* VSIDS-style variable activities with exponential decay,
* phase saving,
* Luby-sequence restarts.

A plain DPLL solver (:class:`DpllSolver`) is provided as the experiment
E12 ablation baseline.  Both expose the same interface:
``add_clause`` / ``solve(assumptions)`` / ``model()``.

:class:`CdclSolver` is *incremental* in the MiniSat sense: it may be
kept alive across many ``solve(assumptions=...)`` calls.  Learned
clauses, VSIDS activities, and saved phases all persist between calls
(assumptions are fully undone -- they are replayed as pseudo-decisions
and retracted by the final backjump to level 0), and ``add_clause``
may be called between solves to narrow the formula without rebuilding
watches.  Families of near-identical queries -- the configuration
sweeps of §6.2, unsat-core shrinking -- thus share one clause database
instead of paying a cold solve each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.sat.cnf import CnfFormula

TRUE, FALSE, UNASSIGNED = 1, -1, 0


@dataclass
class SolverStats:
    """Counters exposed for the benchmarks."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    restarts: int = 0
    max_learned_length: int = 0
    #: Number of :meth:`solve` calls answered by this solver instance --
    #: values above 1 mean the clause database (and any learned clauses)
    #: were reused incrementally.
    solve_calls: int = 0
    #: Number of independently solved subproblems these counters cover:
    #: 1 for a single solver, the component count when the configuration
    #: pipeline ran component-partitioned and aggregated per-component
    #: solver stats (see :mod:`repro.config.partition`).
    components: int = 1


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (the MiniSat formulation)."""
    x = i - 1
    size, sequence = 1, 0
    while size < x + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        sequence -= 1
        x %= size
    return 1 << sequence


class CdclSolver:
    """Conflict-driven clause-learning solver over integer literals."""

    def __init__(
        self,
        formula: Optional[CnfFormula] = None,
        *,
        use_vsids: bool = True,
        use_restarts: bool = True,
        restart_base: int = 100,
        max_learned: int = 4000,
    ) -> None:
        self._num_vars = 0
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        #: Indices of learned clauses with their activity, for reduction.
        self._learned: dict[int, float] = {}
        self._clause_inc = 1.0
        self._max_learned = max_learned
        self._num_problem_clauses = 0
        self._assign: list[int] = [UNASSIGNED]  # 1-indexed by variable
        self._level: list[int] = [0]
        self._reason: list[Optional[int]] = [None]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._activity: list[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._phase: list[bool] = [False]
        self._use_vsids = use_vsids
        self._use_restarts = use_restarts
        self._restart_base = restart_base
        self._ok = True
        self._model: Optional[dict[int, bool]] = None
        self.stats = SolverStats()
        if formula is not None:
            self._ensure_vars(formula.num_vars)
            if formula.is_normalized:
                # Fast path: the formula guarantees no duplicate literals
                # and no tautologies, so skip the per-clause
                # ``sorted(set(...))`` / tautology rebuild and go straight
                # to level-0 reduction and watch setup.
                for clause in formula.clauses():
                    if not self._ok:
                        break
                    self._ingest(list(clause))
            else:
                for clause in formula.clauses():
                    self.add_clause(clause)

    # -- Setup ----------------------------------------------------------

    def _ensure_vars(self, num_vars: int) -> None:
        while self._num_vars < num_vars:
            self._num_vars += 1
            self._assign.append(UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a problem clause.

        May be called before the first :meth:`solve` *or* between solves
        (incremental strengthening): after a solve the trail holds only
        level-0 assignments, so the clause is reduced against those,
        watches are attached normally, and any implied unit propagates
        immediately.  Only adding clauses *during* a search (never
        observable from outside) is forbidden.
        """
        if self._trail_lim:
            raise ConfigurationError("cannot add clauses mid-search")
        clause = sorted(set(literals), key=abs)
        if not clause:
            self._ok = False
            return
        self._ensure_vars(max(abs(l) for l in clause))
        # Drop tautologies (p and not-p together).
        by_var: dict[int, int] = {}
        for literal in clause:
            if by_var.get(abs(literal), literal) != literal:
                return
            by_var[abs(literal)] = literal
        self._ingest(clause)

    def _ingest(self, clause: list[int]) -> None:
        """Reduce a normalized clause against level 0 and install it."""
        # Remove literals already false at level 0; satisfied clauses drop.
        reduced: list[int] = []
        for literal in clause:
            value = self._value(literal)
            if value == TRUE:
                return
            if value == UNASSIGNED:
                reduced.append(literal)
        if not reduced:
            self._ok = False
            return
        if len(reduced) == 1:
            if not self._enqueue(reduced[0], None):
                self._ok = False
            elif self._propagate() is not None:
                self._ok = False
            return
        self._attach(reduced)

    def _attach(self, clause: list[int]) -> int:
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(index)
        self._watches.setdefault(clause[1], []).append(index)
        return index

    def _detach(self, index: int) -> None:
        clause = self._clauses[index]
        for literal in clause[:2]:
            watchlist = self._watches.get(literal)
            if watchlist and index in watchlist:
                watchlist.remove(index)
        self._clauses[index] = []

    def _reduce_learned(self) -> None:
        """Forget the less active half of the learned clauses (MiniSat's
        clause-database reduction).  Called at restart points, where only
        level-0 assignments (whose reasons are locked) exist."""
        if len(self._learned) <= self._max_learned:
            return
        locked = {r for r in self._reason if r is not None}
        target = len(self._learned) // 2
        removed = 0
        for index, _activity in sorted(
            self._learned.items(), key=lambda item: item[1]
        ):
            if removed >= target:
                break
            if index in locked or len(self._clauses[index]) <= 2:
                continue
            self._detach(index)
            del self._learned[index]
            removed += 1
        self.stats.deleted_clauses += removed

    # -- Assignment primitives -------------------------------------------

    def _value(self, literal: int) -> int:
        value = self._assign[abs(literal)]
        return value if literal > 0 else -value

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        current = self._value(literal)
        if current == TRUE:
            return True
        if current == FALSE:
            return False
        var = abs(literal)
        self._assign[var] = TRUE if literal > 0 else FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(literal)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self._qhead < len(self._trail):
            p = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_literal = -p
            watchlist = self._watches.get(false_literal)
            if not watchlist:
                continue
            kept: list[int] = []
            i = 0
            while i < len(watchlist):
                ci = watchlist[i]
                i += 1
                clause = self._clauses[ci]
                # Normalise: the false literal sits at position 1.
                if clause[0] == false_literal:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) == TRUE:
                    kept.append(ci)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(ci)
                if not self._enqueue(clause[0], ci):
                    # Conflict: keep the untouched tail of the watch list.
                    kept.extend(watchlist[i:])
                    self._watches[false_literal] = kept
                    self._qhead = len(self._trail)
                    return ci
            self._watches[false_literal] = kept
        return None

    # -- Conflict analysis -------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay(self) -> None:
        self._var_inc /= self._var_decay

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP analysis: returns (learned clause, backjump level)."""
        learned: list[int] = [0]  # slot 0 becomes the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        p: Optional[int] = None
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)

        while True:
            if conflict in self._learned:
                self._learned[conflict] += self._clause_inc
            clause = self._clauses[conflict]
            start = 0 if p is None else 1
            for q in clause[start:]:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Walk the trail backwards to the next marked literal.
            while not seen[abs(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[abs(p)]
            assert reason is not None, "UIP literal must have a reason"
            # Invariant: a reason clause has its propagated literal at
            # slot 0 (enqueue always passes clause[0], and propagation
            # never swaps a true watch away).
            assert self._clauses[reason][0] == p
            conflict = reason

        learned[0] = -p
        if len(learned) == 1:
            backjump = 0
        else:
            # Second-highest decision level in the clause.
            backjump = max(self._level[abs(q)] for q in learned[1:])
            # Move a literal of the backjump level to slot 1 for watching.
            for k in range(1, len(learned)):
                if self._level[abs(learned[k])] == backjump:
                    learned[1], learned[k] = learned[k], learned[1]
                    break
        return learned, backjump

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for literal in reversed(self._trail[limit:]):
            var = abs(literal)
            self._phase[var] = self._assign[var] == TRUE
            self._assign[var] = UNASSIGNED
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # -- Decisions ----------------------------------------------------------

    def _pick_branch_var(self) -> Optional[int]:
        best: Optional[int] = None
        if self._use_vsids:
            best_activity = -1.0
            for var in range(1, self._num_vars + 1):
                if self._assign[var] == UNASSIGNED:
                    if self._activity[var] > best_activity:
                        best_activity = self._activity[var]
                        best = var
        else:
            for var in range(1, self._num_vars + 1):
                if self._assign[var] == UNASSIGNED:
                    best = var
                    break
        return best

    # -- Main loop ------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Search for a model extending ``assumptions``.

        Returns True (model available via :meth:`model`) or False.

        The solver survives the call either way: assumptions are fully
        retracted, learned clauses/activities/phases are kept, and
        further :meth:`solve` or :meth:`add_clause` calls are legal.
        An UNSAT answer under one set of assumptions does not poison
        later calls unless the formula itself is unsatisfiable.
        """
        self._model = None
        self.stats.solve_calls += 1
        if not self._ok:
            return False
        self._backtrack(0)

        conflicts_until_restart = self._restart_limit(1)
        restart_count = 1

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if len(self._trail_lim) <= len(assumptions):
                    # Conflict under the assumptions alone: unsatisfiable.
                    self._backtrack(0)
                    return False
                learned, backjump = self._analyze(conflict)
                # Backjumping below the assumption boundary is fine: the
                # decision loop replays assumptions as pseudo-decisions.
                self._backtrack(backjump)
                self.stats.learned_clauses += 1
                self.stats.max_learned_length = max(
                    self.stats.max_learned_length, len(learned)
                )
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        return False
                else:
                    index = self._attach(learned)
                    self._learned[index] = self._clause_inc
                    self._enqueue(learned[0], index)
                self._decay()
                self._clause_inc /= 0.999
                conflicts_until_restart -= 1
                if self._use_restarts and conflicts_until_restart <= 0:
                    self.stats.restarts += 1
                    restart_count += 1
                    conflicts_until_restart = self._restart_limit(restart_count)
                    self._backtrack(0)
                    self._reduce_learned()
                continue

            # Replay assumptions as pseudo-decisions.
            if len(self._trail_lim) < len(assumptions):
                literal = assumptions[len(self._trail_lim)]
                value = self._value(literal)
                if value == FALSE:
                    self._backtrack(0)
                    return False
                self._trail_lim.append(len(self._trail))
                if value == UNASSIGNED:
                    self._enqueue(literal, None)
                continue

            var = self._pick_branch_var()
            if var is None:
                self._model = {
                    v: self._assign[v] == TRUE
                    for v in range(1, self._num_vars + 1)
                }
                self._backtrack(0)
                return True
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            literal = var if self._phase[var] else -var
            self._enqueue(literal, None)

    def _restart_limit(self, count: int) -> int:
        if not self._use_restarts:
            return 1 << 62
        return self._restart_base * _luby(count)

    def model(self) -> dict[int, bool]:
        if self._model is None:
            raise ConfigurationError("no model available (call solve first)")
        return dict(self._model)


class DpllSolver:
    """A plain recursive DPLL solver (no learning) -- the E12 baseline."""

    def __init__(self, formula: Optional[CnfFormula] = None) -> None:
        self._clauses: list[tuple[int, ...]] = []
        self._num_vars = 0
        self._model: Optional[dict[int, bool]] = None
        self.stats = SolverStats()
        if formula is not None:
            self._num_vars = formula.num_vars
            for clause in formula.clauses():
                self.add_clause(clause)

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        if clause:
            self._num_vars = max(self._num_vars, max(abs(l) for l in clause))
        self._clauses.append(clause)

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        self.stats.solve_calls += 1
        assignment: dict[int, bool] = {}
        for literal in assumptions:
            value = literal > 0
            var = abs(literal)
            if assignment.get(var, value) != value:
                return False
            assignment[var] = value
        result = self._search(assignment)
        if result is None:
            self._model = None
            return False
        for var in range(1, self._num_vars + 1):
            result.setdefault(var, False)
        self._model = result
        return True

    def _search(self, assignment: dict[int, bool]) -> Optional[dict[int, bool]]:
        assignment = dict(assignment)
        # Unit propagation to fixpoint.
        while True:
            unit: Optional[int] = None
            for clause in self._clauses:
                unassigned: list[int] = []
                satisfied = False
                for literal in clause:
                    var = abs(literal)
                    if var in assignment:
                        if assignment[var] == (literal > 0):
                            satisfied = True
                            break
                    else:
                        unassigned.append(literal)
                if satisfied:
                    continue
                if not unassigned:
                    self.stats.conflicts += 1
                    return None
                if len(unassigned) == 1:
                    unit = unassigned[0]
                    break
            if unit is None:
                break
            self.stats.propagations += 1
            assignment[abs(unit)] = unit > 0

        # Pick the first unassigned variable appearing in an unsatisfied clause.
        branch_var: Optional[int] = None
        for clause in self._clauses:
            if any(
                abs(l) in assignment and assignment[abs(l)] == (l > 0)
                for l in clause
            ):
                continue
            for literal in clause:
                if abs(literal) not in assignment:
                    branch_var = abs(literal)
                    break
            if branch_var is not None:
                break
        if branch_var is None:
            return assignment

        self.stats.decisions += 1
        for value in (True, False):
            assignment[branch_var] = value
            result = self._search(assignment)
            if result is not None:
                return result
        del assignment[branch_var]
        return None

    def model(self) -> dict[int, bool]:
        if self._model is None:
            raise ConfigurationError("no model available (call solve first)")
        return dict(self._model)


def solve_formula(
    formula: CnfFormula,
    assumptions: Sequence[int] = (),
    *,
    solver: str = "cdcl",
    use_vsids: bool = True,
) -> Optional[dict]:
    """Solve ``formula``; return the name-decoded model or None if unsat."""
    engine: CdclSolver | DpllSolver
    if solver == "cdcl":
        engine = CdclSolver(formula, use_vsids=use_vsids)
    elif solver == "dpll":
        engine = DpllSolver(formula)
    else:
        raise ConfigurationError(f"unknown solver: {solver!r}")
    if not engine.solve(assumptions):
        return None
    return formula.decode_model(engine.model())
