"""CNF formulas over named variables.

The configuration engine's atomic propositions are ``rsrc(id)`` facts
about resource instances (S4); this module maps such names to DIMACS-style
integer variables and accumulates clauses.  Literals are non-zero ints:
``v`` asserts variable ``v`` true, ``-v`` false -- the MiniSat convention
the paper's implementation consumed.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional

from repro.core.errors import ConfigurationError


class CnfFormula:
    """A growable CNF formula with a name <-> variable mapping."""

    def __init__(self) -> None:
        self._clauses: list[tuple[int, ...]] = []
        self._name_to_var: dict[Hashable, int] = {}
        self._var_to_name: dict[int, Hashable] = {}
        self._num_vars = 0
        self._normalized = True

    # -- Variables ------------------------------------------------------

    def new_var(self, name: Optional[Hashable] = None) -> int:
        """Allocate a fresh variable, optionally bound to ``name``."""
        if name is not None and name in self._name_to_var:
            raise ConfigurationError(f"variable name already used: {name!r}")
        self._num_vars += 1
        var = self._num_vars
        if name is not None:
            self._name_to_var[name] = var
            self._var_to_name[var] = name
        return var

    def var(self, name: Hashable) -> int:
        """The variable for ``name``, allocating one on first use."""
        existing = self._name_to_var.get(name)
        if existing is not None:
            return existing
        return self.new_var(name)

    def has_name(self, name: Hashable) -> bool:
        return name in self._name_to_var

    def name_of(self, var: int) -> Optional[Hashable]:
        return self._var_to_name.get(abs(var))

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def is_normalized(self) -> bool:
        """True while every clause added so far is free of duplicate
        literals and tautologies (no variable appears twice).

        Solvers use this to skip per-clause normalization when ingesting
        the formula -- the hottest loop of solver construction.
        """
        return self._normalized

    # -- Clauses --------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        if not clause:
            raise ConfigurationError("empty clause added (trivially unsat)")
        seen_vars = set()
        for literal in clause:
            if literal == 0 or abs(literal) > self._num_vars:
                raise ConfigurationError(f"literal out of range: {literal}")
            seen_vars.add(abs(literal))
        if len(seen_vars) != len(clause):
            # Duplicate literal or tautology: still legal, but solvers
            # must normalize this clause themselves.
            self._normalized = False
        self._clauses.append(clause)

    def add_fact(self, literal: int) -> None:
        """Assert a single literal (a unit clause)."""
        self.add_clause([literal])

    def add_implies(self, antecedent: int, consequent: int) -> None:
        """``antecedent -> consequent``."""
        self.add_clause([-antecedent, consequent])

    def add_implies_clause(self, antecedent: int, consequents: Iterable[int]) -> None:
        """``antecedent -> (c1 | c2 | ...)``."""
        self.add_clause([-antecedent, *consequents])

    def clauses(self) -> Iterator[tuple[int, ...]]:
        return iter(self._clauses)

    def copy(self) -> "CnfFormula":
        clone = CnfFormula()
        clone._clauses = list(self._clauses)
        clone._name_to_var = dict(self._name_to_var)
        clone._var_to_name = dict(self._var_to_name)
        clone._num_vars = self._num_vars
        clone._normalized = self._normalized
        return clone

    def decode_model(self, model: dict[int, bool]) -> dict[Hashable, bool]:
        """Translate a variable-indexed model back to names."""
        return {
            name: model.get(var, False)
            for name, var in self._name_to_var.items()
        }

    def __str__(self) -> str:
        return f"CnfFormula({self._num_vars} vars, {len(self._clauses)} clauses)"
