"""DIMACS CNF reading and writing.

MiniSat consumes DIMACS; round-tripping through the format lets the
configuration engine's constraints be inspected with external tools and
gives the test suite a corpus format.
"""

from __future__ import annotations

from typing import TextIO

from repro.core.errors import ConfigurationError
from repro.sat.cnf import CnfFormula


def write_dimacs(formula: CnfFormula, stream: TextIO) -> None:
    """Serialise ``formula`` in DIMACS CNF, with variable names as
    comments so the file stays human-readable."""
    for var in range(1, formula.num_vars + 1):
        name = formula.name_of(var)
        if name is not None:
            stream.write(f"c var {var} = {name}\n")
    stream.write(f"p cnf {formula.num_vars} {formula.num_clauses}\n")
    for clause in formula.clauses():
        stream.write(" ".join(str(l) for l in clause) + " 0\n")


def dimacs_text(formula: CnfFormula) -> str:
    """The DIMACS serialisation as a string."""
    import io

    buffer = io.StringIO()
    write_dimacs(formula, buffer)
    return buffer.getvalue()


def read_dimacs(stream: TextIO) -> CnfFormula:
    """Parse DIMACS CNF into a :class:`CnfFormula`."""
    formula = CnfFormula()
    declared_vars = 0
    declared_clauses = 0
    saw_header = False
    pending: list[int] = []
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            if saw_header:
                raise ConfigurationError(
                    f"line {line_number}: duplicate DIMACS header"
                )
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ConfigurationError(
                    f"line {line_number}: malformed header {line!r}"
                )
            declared_vars = int(parts[2])
            declared_clauses = int(parts[3])
            for _ in range(declared_vars):
                formula.new_var()
            saw_header = True
            continue
        if not saw_header:
            raise ConfigurationError(
                f"line {line_number}: clause before DIMACS header"
            )
        for token in line.split():
            literal = int(token)
            if literal == 0:
                if pending:
                    formula.add_clause(pending)
                    pending = []
            else:
                if abs(literal) > declared_vars:
                    raise ConfigurationError(
                        f"line {line_number}: literal {literal} exceeds "
                        f"declared variable count {declared_vars}"
                    )
                pending.append(literal)
    if pending:
        formula.add_clause(pending)
    if saw_header and formula.num_clauses != declared_clauses:
        raise ConfigurationError(
            f"header declared {declared_clauses} clauses, found "
            f"{formula.num_clauses}"
        )
    return formula


def parse_dimacs(text: str) -> CnfFormula:
    """Parse DIMACS CNF from a string."""
    import io

    return read_dimacs(io.StringIO(text))
