"""A from-scratch SAT substrate: CNF formulas, cardinality encodings, a
CDCL solver (the paper's MiniSat substitute), and DIMACS I/O."""

from repro.sat.cnf import CnfFormula
from repro.sat.dimacs import dimacs_text, parse_dimacs, read_dimacs, write_dimacs
from repro.sat.encodings import (
    ExactlyOneEncoding,
    at_least_one,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_one,
    implies_exactly_one,
)
from repro.sat.solver import CdclSolver, DpllSolver, SolverStats, solve_formula

__all__ = [
    "CnfFormula",
    "CdclSolver",
    "DpllSolver",
    "SolverStats",
    "ExactlyOneEncoding",
    "at_least_one",
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "exactly_one",
    "implies_exactly_one",
    "solve_formula",
    "dimacs_text",
    "parse_dimacs",
    "read_dimacs",
    "write_dimacs",
]
