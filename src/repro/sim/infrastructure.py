"""The assembled simulation world.

An :class:`Infrastructure` bundles the shared clock, network, package
index, download service, cloud providers, and per-machine package
managers -- everything resource drivers touch.  Tests and benchmarks
create one per scenario.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.cloud import CloudProvider, MachineImage, standard_images
from repro.sim.machine import Machine, OsIdentity
from repro.sim.network import Network
from repro.sim.oslpm import OsPackageManager
from repro.sim.package_index import DownloadService, PackageIndex


class Infrastructure:
    """One simulated world: clock + network + packages + clouds."""

    def __init__(self, *, use_cache: bool = True) -> None:
        self.clock = SimClock()
        self.network = Network()
        self.package_index = PackageIndex()
        self.downloads = DownloadService(
            self.package_index, self.clock, use_cache=use_cache
        )
        self.fault_plan = None
        #: Optional :class:`~repro.obs.tracer.Tracer`.  ``None`` (the
        #: default) keeps every emitting site on its untraced fast path.
        self.tracer = None
        self._providers: dict[str, CloudProvider] = {}
        self._oslpm: dict[str, OsPackageManager] = {}

    def set_fault_plan(self, plan) -> None:
        """Install (or, with ``None``, remove) a
        :class:`~repro.sim.faults.FaultPlan`.  Driver actions and
        machine-level operations consult it before running."""
        self.fault_plan = plan
        self.downloads.fault_plan = plan
        if plan is not None:
            plan.tracer = self.tracer

    def set_tracer(self, tracer) -> None:
        """Install (or, with ``None``, remove) a
        :class:`~repro.obs.tracer.Tracer`.  The engine, scheduler,
        monitor, coordinator, and any installed fault plan emit
        structured events through it."""
        self.tracer = tracer
        if self.fault_plan is not None:
            self.fault_plan.tracer = tracer

    # -- Machines ----------------------------------------------------------

    def add_machine(
        self,
        hostname: str,
        os_name: str = "ubuntu-linux",
        os_version: str = "10.04",
        **kwargs,
    ) -> Machine:
        """Create a pre-existing (non-cloud) machine."""
        machine = Machine(
            hostname,
            OsIdentity(os_name, os_version),
            self.network,
            self.clock,
            **kwargs,
        )
        return machine

    def machine(self, hostname: str) -> Machine:
        return self.network.machine(hostname)

    def remove_machine(self, hostname: str) -> Machine:
        """Permanently lose a machine: drop it (and its endpoints) from
        the network and forget its memoised package manager.

        Forgetting the package manager matters for repair: a later
        replacement machine under the same hostname must get a *fresh*
        OSLPM bound to the new filesystem, not the dead machine's.
        Returns the removed machine (its object stays inspectable)."""
        machine = self.network.machine(hostname)
        self.network.unregister_machine(hostname)
        self._oslpm.pop(hostname, None)
        return machine

    def package_manager(self, machine: Machine) -> OsPackageManager:
        """The (memoised) package manager of a machine."""
        manager = self._oslpm.get(machine.hostname)
        if manager is None:
            manager = OsPackageManager(machine, self.downloads)
            self._oslpm[machine.hostname] = manager
        return manager

    # -- Cloud providers -------------------------------------------------------

    def add_provider(
        self, name: str, *, provision_seconds: float = 55.0
    ) -> CloudProvider:
        if name in self._providers:
            raise SimulationError(f"provider already added: {name}")
        provider = CloudProvider(
            name, self.network, self.clock, provision_seconds=provision_seconds
        )
        for image in standard_images():
            provider.register_image(image)
        self._providers[name] = provider
        return provider

    def provider(self, name: str) -> CloudProvider:
        try:
            return self._providers[name]
        except KeyError:
            raise SimulationError(f"unknown provider: {name}") from None

    def providers(self) -> list[CloudProvider]:
        return [self._providers[n] for n in sorted(self._providers)]

    def default_provider(self) -> Optional[CloudProvider]:
        providers = self.providers()
        return providers[0] if providers else None
