"""A simulated package repository with download latency and a local cache.

Reproduces the substrate behind experiment E4: "Running the automated
install of Jasper Reports Server takes 17 minutes if the required
software packages are downloaded from the internet and 5 minutes if they
are obtained from a local file cache."  Downloads advance the simulated
clock by a per-request latency plus size/bandwidth; cache hits use a much
faster local bandwidth and no request latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import SimulationError
from repro.sim.clock import SimClock

#: Default link speeds, chosen so realistic package sizes give
#: minutes-scale installs like the paper's (E4: ~17 min internet vs
#: ~5 min cached for the Jasper stack).
INTERNET_BANDWIDTH_BPS = 1_000_000.0  # ~1 MB/s WAN (2011-era broadband)
CACHE_BANDWIDTH_BPS = 60_000_000.0  # ~60 MB/s local disk
INTERNET_LATENCY_S = 2.0  # per-request setup cost


@dataclass(frozen=True)
class PackageArtifact:
    """One downloadable artifact: an archive, installer, or tarball."""

    name: str
    version: str
    size_bytes: int
    files: tuple[tuple[str, str], ...] = ()  # relative path -> content

    def key(self) -> tuple[str, str]:
        return (self.name, self.version)

    def __str__(self) -> str:
        return f"{self.name}-{self.version} ({self.size_bytes} bytes)"


class PackageIndex:
    """The remote package universe (PyPI + vendor download sites)."""

    def __init__(self) -> None:
        self._artifacts: dict[tuple[str, str], PackageArtifact] = {}

    def publish(self, artifact: PackageArtifact) -> None:
        if artifact.key() in self._artifacts:
            raise SimulationError(f"artifact already published: {artifact}")
        self._artifacts[artifact.key()] = artifact

    def publish_simple(
        self, name: str, version: str, size_bytes: int
    ) -> PackageArtifact:
        """Publish an artifact with a single placeholder payload file."""
        artifact = PackageArtifact(
            name,
            version,
            size_bytes,
            ((f"{name}/VERSION", version),),
        )
        self.publish(artifact)
        return artifact

    def lookup(self, name: str, version: str) -> PackageArtifact:
        try:
            return self._artifacts[(name, version)]
        except KeyError:
            raise SimulationError(
                f"no artifact {name}-{version} in the index"
            ) from None

    def has(self, name: str, version: str) -> bool:
        return (name, version) in self._artifacts

    def __len__(self) -> int:
        return len(self._artifacts)


class DownloadService:
    """Fetches artifacts, consulting (and filling) a local cache.

    ``use_cache=False`` models a cold environment with no local mirror.
    """

    def __init__(
        self,
        index: PackageIndex,
        clock: SimClock,
        *,
        use_cache: bool = True,
        internet_bandwidth: float = INTERNET_BANDWIDTH_BPS,
        cache_bandwidth: float = CACHE_BANDWIDTH_BPS,
        internet_latency: float = INTERNET_LATENCY_S,
    ) -> None:
        self._index = index
        self._clock = clock
        self._use_cache = use_cache
        self._internet_bandwidth = internet_bandwidth
        self._cache_bandwidth = cache_bandwidth
        self._internet_latency = internet_latency
        self._cache: set[tuple[str, str]] = set()
        self.downloads = 0
        self.cache_hits = 0
        #: Optional FaultPlan consulted by OSLPM-level operations.
        self.fault_plan = None

    def prefetch(self, name: str, version: str) -> None:
        """Warm the cache without advancing the clock (models a mirror
        populated ahead of time)."""
        self._index.lookup(name, version)
        self._cache.add((name, version))

    def fetch(self, name: str, version: str) -> PackageArtifact:
        """Fetch an artifact, advancing the simulated clock accordingly."""
        artifact = self._index.lookup(name, version)
        self.downloads += 1
        if self._use_cache and artifact.key() in self._cache:
            self.cache_hits += 1
            duration = artifact.size_bytes / self._cache_bandwidth
            self._clock.advance(duration, f"cache:{name}-{version}")
        else:
            duration = (
                self._internet_latency
                + artifact.size_bytes / self._internet_bandwidth
            )
            self._clock.advance(duration, f"download:{name}-{version}")
            if self._use_cache:
                self._cache.add(artifact.key())
        return artifact

    def is_cached(self, name: str, version: str) -> bool:
        return (name, version) in self._cache
