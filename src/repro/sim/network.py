"""A simulated TCP network connecting simulated machines.

Services bind ``(hostname, port)`` endpoints; clients ``connect`` to
them.  A connection succeeds only if the listening process is currently
running -- this is precisely how the paper's startup-ordering hazard
("if a component is started without first ensuring that all of its
dependencies have completed their startup, it might intermittently fail
due to connection errors") becomes observable in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.errors import SimulationError
from repro.sim.process import SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


class ConnectionRefused(SimulationError):
    """No running listener at the requested endpoint."""


@dataclass
class Endpoint:
    hostname: str
    port: int
    process: SimProcess

    def __str__(self) -> str:
        return f"{self.hostname}:{self.port} -> {self.process.name}"


class Network:
    """The global endpoint table plus hostname -> machine registry."""

    def __init__(self) -> None:
        self._machines: dict[str, "Machine"] = {}
        self._endpoints: dict[tuple[str, int], Endpoint] = {}
        self.connections_attempted = 0
        self.connections_refused = 0

    # -- Machines -----------------------------------------------------------

    def register_machine(self, machine: "Machine") -> None:
        if machine.hostname in self._machines:
            raise SimulationError(f"hostname already on network: {machine.hostname}")
        self._machines[machine.hostname] = machine

    def unregister_machine(self, hostname: str) -> None:
        machine = self._machines.pop(hostname, None)
        if machine is None:
            raise SimulationError(f"unknown hostname: {hostname}")
        for key in [k for k in self._endpoints if k[0] == hostname]:
            del self._endpoints[key]

    def machine(self, hostname: str) -> "Machine":
        try:
            return self._machines[hostname]
        except KeyError:
            raise SimulationError(f"unknown hostname: {hostname}") from None

    def has_machine(self, hostname: str) -> bool:
        return hostname in self._machines

    def machines(self) -> list["Machine"]:
        return [self._machines[h] for h in sorted(self._machines)]

    # -- Endpoints ---------------------------------------------------------

    def bind(self, hostname: str, port: int, process: SimProcess) -> None:
        key = (hostname, port)
        existing = self._endpoints.get(key)
        if existing is not None and existing.process.is_running():
            raise SimulationError(
                f"port {port} on {hostname} already bound by "
                f"{existing.process.name}"
            )
        self._endpoints[key] = Endpoint(hostname, port, process)

    def unbind(self, hostname: str, port: int) -> None:
        self._endpoints.pop((hostname, port), None)

    def is_port_free(self, hostname: str, port: int) -> bool:
        endpoint = self._endpoints.get((hostname, port))
        return endpoint is None or not endpoint.process.is_running()

    def connect(self, hostname: str, port: int) -> SimProcess:
        """Open a connection; raises :class:`ConnectionRefused` unless a
        running process listens at the endpoint."""
        self.connections_attempted += 1
        endpoint = self._endpoints.get((hostname, port))
        if endpoint is None or not endpoint.process.is_running():
            self.connections_refused += 1
            raise ConnectionRefused(
                f"connection refused: {hostname}:{port}"
                + (f" (process {endpoint.process.name} is "
                   f"{endpoint.process.state.value})" if endpoint else "")
            )
        return endpoint.process

    def can_connect(self, hostname: str, port: int) -> bool:
        try:
            self.connect(hostname, port)
            return True
        except ConnectionRefused:
            return False

    def endpoints(self) -> list[Endpoint]:
        return [self._endpoints[k] for k in sorted(self._endpoints)]
