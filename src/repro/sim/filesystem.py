"""An in-memory POSIX-ish filesystem for simulated machines.

Resource drivers install packages, write configuration files, and unpack
archives against this filesystem.  It supports whole-tree snapshots,
which is how the upgrade engine implements "the current system is backed
up ... if the upgrade fails ... the old version [is] restored from the
backup" (S5.2).
"""

from __future__ import annotations

import posixpath
from typing import Iterator

from repro.core.errors import SimulationError


def normalize(path: str) -> str:
    """Normalise to an absolute POSIX path."""
    if not path.startswith("/"):
        raise SimulationError(f"paths must be absolute: {path!r}")
    normalized = posixpath.normpath(path)
    return normalized


class VirtualFilesystem:
    """Files are stored as a flat dict of path -> content; directories are
    tracked explicitly so empty directories exist."""

    def __init__(self) -> None:
        self._files: dict[str, str] = {}
        self._dirs: set[str] = {"/"}

    # -- Directories ------------------------------------------------------

    def mkdir(self, path: str, parents: bool = True) -> None:
        path = normalize(path)
        if path in self._files:
            raise SimulationError(f"file exists at {path}")
        parent = posixpath.dirname(path)
        if parent not in self._dirs:
            if not parents:
                raise SimulationError(f"parent directory missing: {parent}")
            self.mkdir(parent, parents=True)
        self._dirs.add(path)

    def is_dir(self, path: str) -> bool:
        return normalize(path) in self._dirs

    # -- Files ------------------------------------------------------------

    def write_file(self, path: str, content: str) -> None:
        path = normalize(path)
        if path in self._dirs:
            raise SimulationError(f"directory exists at {path}")
        parent = posixpath.dirname(path)
        if parent not in self._dirs:
            self.mkdir(parent, parents=True)
        self._files[path] = content

    def read_file(self, path: str) -> str:
        path = normalize(path)
        if path not in self._files:
            raise SimulationError(f"no such file: {path}")
        return self._files[path]

    def append_file(self, path: str, content: str) -> None:
        existing = self._files.get(normalize(path), "")
        self.write_file(path, existing + content)

    def is_file(self, path: str) -> bool:
        return normalize(path) in self._files

    def exists(self, path: str) -> bool:
        path = normalize(path)
        return path in self._files or path in self._dirs

    # -- Removal / listing --------------------------------------------------

    def remove(self, path: str) -> None:
        """Remove a file, or a directory and everything under it."""
        path = normalize(path)
        if path == "/":
            raise SimulationError("refusing to remove /")
        if path in self._files:
            del self._files[path]
            return
        if path not in self._dirs:
            raise SimulationError(f"no such path: {path}")
        prefix = path + "/"
        self._dirs = {d for d in self._dirs if d != path and not d.startswith(prefix)}
        self._files = {
            f: content
            for f, content in self._files.items()
            if not f.startswith(prefix)
        }

    def listdir(self, path: str) -> list[str]:
        path = normalize(path)
        if path not in self._dirs:
            raise SimulationError(f"no such directory: {path}")
        prefix = "/" if path == "/" else path + "/"
        names: set[str] = set()
        for candidate in list(self._dirs) + list(self._files):
            if candidate != path and candidate.startswith(prefix):
                rest = candidate[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)

    def walk_files(self, path: str = "/") -> Iterator[str]:
        """All file paths under ``path``, sorted."""
        path = normalize(path)
        prefix = "/" if path == "/" else path + "/"
        for file_path in sorted(self._files):
            if file_path == path or file_path.startswith(prefix):
                yield file_path

    def file_count(self, path: str = "/") -> int:
        return sum(1 for _ in self.walk_files(path))

    # -- Snapshot / restore ----------------------------------------------------

    def snapshot(self) -> dict:
        """An opaque, copy-on-write-free snapshot of the whole tree."""
        return {"files": dict(self._files), "dirs": set(self._dirs)}

    def restore(self, snapshot: dict) -> None:
        self._files = dict(snapshot["files"])
        self._dirs = set(snapshot["dirs"])
