"""Deterministic fault injection.

The monitoring experiment needs failures: "If the process associated
with a service fails, it will be automatically restarted by monit."
This module provides a seeded injector so chaos-style tests are
reproducible: it picks running processes at random and fails them, and
can run whole kill/poll campaigns against a deployed system.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.sim.process import SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.deploy import DeployedSystem
    from repro.runtime.monitor import ProcessMonitor


@dataclass
class FaultRecord:
    """One injected failure."""

    timestamp: float
    process_name: str
    hostname: str


class FaultInjector:
    """Fails random running service processes of a deployed system."""

    def __init__(self, system: "DeployedSystem", seed: int = 0) -> None:
        self._system = system
        self._rng = random.Random(seed)
        self.records: list[FaultRecord] = []

    def _running_service_processes(self) -> list[tuple[str, SimProcess]]:
        from repro.drivers.library import ServiceDriver

        candidates: list[tuple[str, SimProcess]] = []
        for instance_id, driver in sorted(self._system.drivers.items()):
            if isinstance(driver, ServiceDriver):
                process = driver.process
                if process is not None and process.is_running():
                    candidates.append((instance_id, process))
        return candidates

    def inject(self, count: int = 1) -> list[FaultRecord]:
        """Fail up to ``count`` random running service processes."""
        candidates = self._running_service_processes()
        if not candidates:
            return []
        picked = self._rng.sample(candidates, min(count, len(candidates)))
        new_records: list[FaultRecord] = []
        for instance_id, process in picked:
            machine = self._system.machine_for(instance_id)
            process.fail()
            record = FaultRecord(
                timestamp=self._system.infrastructure.clock.now,
                process_name=process.name,
                hostname=machine.hostname,
            )
            new_records.append(record)
            self.records.append(record)
        return new_records

    def campaign(
        self,
        monitor: "ProcessMonitor",
        rounds: int,
        *,
        max_failures_per_round: int = 2,
        seconds_between_rounds: float = 30.0,
    ) -> dict:
        """Run a kill/poll campaign: each round injects up to
        ``max_failures_per_round`` failures, advances time, and lets the
        monitor repair.  Returns summary counters."""
        clock = self._system.infrastructure.clock
        injected = 0
        restarted = 0
        for _ in range(rounds):
            failures = self.inject(
                self._rng.randint(0, max_failures_per_round)
            )
            injected += len(failures)
            clock.advance(seconds_between_rounds, "fault-campaign")
            restarted += len(monitor.poll())
        return {"injected": injected, "restarted": restarted}
