"""Deterministic fault injection.

Two layers of chaos live here.

:class:`FaultInjector` is the original *post-deployment* injector: it
picks running processes of a deployed system at random and fails them so
the monitor ("monit") can be exercised.

:class:`FaultPlan` / :class:`FaultyWorld` inject faults *during*
deployment: every driver action flows through
:meth:`~repro.drivers.base.ResourceDriver.perform`, which consults the
infrastructure's installed plan before running the action's handler, so
every driver is exercised without modification.  Machine-level
operations (OSLPM package installs, which cover archive fetches) consult
the same plan beneath the drivers.  Faults are deterministic: a seeded
plan decides per *site* (for example ``driver:mysql:start``) from a
stable per-site RNG, so the decisions do not depend on call order --
which is what makes crash/resume runs replayable.

Failure modes (:class:`FaultKind`):

* ``TRANSIENT`` -- the operation raises
  :class:`~repro.core.errors.TransientError` without side effects;
* ``HANG`` -- the operation hangs for ``hang_seconds`` of simulated
  time; if that exceeds the caller's timeout budget the clock advances
  only to the budget and :class:`~repro.core.errors.ActionTimeout` is
  raised, otherwise the operation is merely slow and then succeeds;
* ``FLAKY`` -- shorthand for fail-``times``-then-succeed (each failure
  is a ``TransientError``); ``TRANSIENT`` with ``times > 1`` behaves
  identically.
* ``CRASH`` -- *permanent* loss: the site fails on every attempt with a
  non-retryable :class:`~repro.core.errors.DriverError` (retrying a
  lost machine is futile; the reconcile loop repairs by redeploying
  elsewhere or onto a replacement).  ``times`` is ignored.

:class:`MachineChurn` builds on the injector: a deterministic schedule
of permanent machine losses (one crash-or-survive draw per live machine
per round, seeded per ``(seed, round, hostname)`` so the loss schedule
does not depend on visit order or on how earlier rounds were repaired).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.errors import ActionTimeout, DriverError, TransientError
from repro.sim.clock import SimClock
from repro.sim.process import SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.deploy import DeployedSystem
    from repro.runtime.monitor import ProcessMonitor
    from repro.sim.infrastructure import Infrastructure


class FaultKind(Enum):
    """How an injected fault manifests."""

    TRANSIENT = "transient"
    HANG = "hang"
    FLAKY = "flaky"
    CRASH = "crash"  # permanent: every attempt fails, non-retryable


@dataclass
class FaultRule:
    """Inject up to ``times`` faults at every site matching ``pattern``.

    Sites are strings like ``driver:<instance>:<action>`` or
    ``oslpm:<hostname>:install:<package>``; ``pattern`` is matched with
    :func:`fnmatch.fnmatchcase`.
    """

    pattern: str
    kind: FaultKind = FaultKind.TRANSIENT
    times: int = 1
    hang_seconds: float = 0.0


@dataclass
class InjectedFault:
    """One fault the plan actually fired."""

    timestamp: float
    site: str
    kind: FaultKind
    occurrence: int  # 1-based count of faults fired at this site


@dataclass
class _SiteState:
    """Per-site countdown: how many more faults to fire, and how."""

    kind: FaultKind
    remaining: int
    hang_seconds: float
    fired: int = 0


class FaultPlan:
    """A deterministic schedule of faults keyed by operation site.

    Explicit rules are added with :meth:`on`; :meth:`seeded` builds a
    randomized-but-reproducible plan where every site independently
    draws whether (and how) it fails from ``Random(f"{seed}|{site}")``.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: list[FaultRule] = []
        self._sites: dict[str, Optional[_SiteState]] = {}
        self._rate = 0.0
        self._random_kinds: tuple[FaultKind, ...] = ()
        self._include: tuple[str, ...] = ("driver:*",)
        self._max_failures = 1
        self._random_hang_seconds = 0.0
        self.records: list[InjectedFault] = []
        #: Optional tracer, set by ``Infrastructure.set_fault_plan`` /
        #: ``set_tracer``; injections emit instant events through it.
        self.tracer = None

    # -- Construction ----------------------------------------------------

    def on(
        self,
        pattern: str,
        *,
        kind: FaultKind = FaultKind.TRANSIENT,
        times: int = 1,
        hang_seconds: float = 0.0,
    ) -> "FaultPlan":
        """Add an explicit rule (chainable)."""
        if kind == FaultKind.HANG and hang_seconds <= 0.0:
            raise ValueError("HANG faults need hang_seconds > 0")
        self._rules.append(FaultRule(pattern, kind, times, hang_seconds))
        return self

    @classmethod
    def seeded(
        cls,
        seed: int,
        rate: float,
        *,
        kinds: Sequence[FaultKind] = (FaultKind.TRANSIENT, FaultKind.FLAKY),
        include: Sequence[str] = ("driver:*",),
        max_failures: int = 2,
        hang_seconds: float = 45.0,
    ) -> "FaultPlan":
        """A plan that fails each matching site with probability ``rate``.

        Each site's decision (fail or not, kind, failure count) comes
        from its own stable RNG, so two runs over the same spec -- or a
        failed run and its resume -- see identical faults at identical
        sites regardless of the order sites are visited in.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        plan = cls(seed)
        plan._rate = rate
        plan._random_kinds = tuple(kinds)
        plan._include = tuple(include)
        plan._max_failures = max(1, max_failures)
        plan._random_hang_seconds = hang_seconds
        return plan

    # -- Decision --------------------------------------------------------

    def _state_for(self, site: str) -> Optional[_SiteState]:
        if site in self._sites:
            return self._sites[site]
        state: Optional[_SiteState] = None
        for rule in self._rules:
            if fnmatchcase(site, rule.pattern):
                state = _SiteState(rule.kind, rule.times, rule.hang_seconds)
                break
        if state is None and self._rate > 0.0:
            if any(fnmatchcase(site, p) for p in self._include):
                rng = random.Random(f"{self.seed}|{site}")
                if rng.random() < self._rate:
                    kind = self._random_kinds[
                        rng.randrange(len(self._random_kinds))
                    ]
                    times = rng.randint(1, self._max_failures)
                    state = _SiteState(kind, times, self._random_hang_seconds)
        self._sites[site] = state
        return state

    def fire(
        self,
        site: str,
        clock: SimClock,
        *,
        timeout: Optional[float] = None,
    ) -> None:
        """Fault ``site`` if the plan says so; otherwise return quietly.

        Raises :class:`TransientError` for transient/flaky faults.  For
        hangs, advances the clock by the hang duration capped at
        ``timeout`` and raises :class:`ActionTimeout` only if the hang
        exceeded the budget (a hang within budget is just slowness).
        """
        state = self._state_for(site)
        if state is None:
            return
        if state.kind == FaultKind.CRASH:
            # Permanent: never decremented, fails every attempt with a
            # non-retryable error so retry policies give up immediately.
            state.fired += 1
            self._record(site, state, clock)
            raise DriverError(f"{site}: permanent fault (site lost)")
        if state.remaining <= 0:
            return
        if state.kind == FaultKind.HANG:
            if timeout is not None and state.hang_seconds > timeout:
                state.remaining -= 1
                state.fired += 1
                clock.advance(timeout, f"fault-hang:{site}")
                self._record(site, state, clock)
                raise ActionTimeout(
                    f"{site}: hung for {timeout:.1f}s "
                    f"(timeout budget exhausted)"
                )
            # Slow but within budget (or no budget): charge the hang
            # and let the operation proceed.
            state.remaining -= 1
            state.fired += 1
            clock.advance(state.hang_seconds, f"fault-slow:{site}")
            self._record(site, state, clock)
            return
        state.remaining -= 1
        state.fired += 1
        self._record(site, state, clock)
        raise TransientError(
            f"{site}: injected transient fault "
            f"({state.fired} of {state.fired + state.remaining})"
        )

    def _record(self, site: str, state: _SiteState, clock: SimClock) -> None:
        self.records.append(
            InjectedFault(clock.now, site, state.kind, state.fired)
        )
        if self.tracer is not None:
            self.tracer.instant(
                site, category="fault", timestamp=clock.now, lane="faults",
                kind=state.kind.value, occurrence=state.fired,
            )
            self.tracer.metrics.counter("faults.injected").inc()

    def pending(self, site: str) -> int:
        """How many more faults this site would still fire (0 if none)."""
        state = self._state_for(site)
        return state.remaining if state is not None else 0


class LinkFaultPlan:
    """Deterministic per-message chaos for the simulated message bus.

    The bus (:mod:`repro.runtime.bus`) asks :meth:`copies` what happens
    to one transmission attempt: the answer is a list of extra-delay
    offsets, one per copy that will actually arrive.  ``[]`` means the
    message is dropped, ``[0.0]`` is a clean delivery, ``[0.0, 0.4]``
    is a duplicate, and non-zero offsets (drawn up to ``jitter``
    seconds) reorder messages relative to their send order.

    Decisions come from ``Random(f"{seed}|{site}|{attempt}")`` where the
    site is ``<kind>:<src>-><dst>:<dedup key>`` -- a pure function of
    the message, never of call order, which is what makes chaos runs
    (and their retransmissions: each attempt draws independently)
    replayable bit for bit.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        jitter: float = 0.0,
        include: Sequence[str] = ("*",),
    ) -> None:
        for name, rate in (("drop", drop), ("duplicate", duplicate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.seed = seed
        self.drop = drop
        self.duplicate = duplicate
        self.jitter = jitter
        self.include = tuple(include)

    def copies(self, site: str, attempt: int) -> list[float]:
        """Extra-delay offsets for each arriving copy of one send."""
        if not any(fnmatchcase(site, p) for p in self.include):
            return [0.0]
        rng = random.Random(f"{self.seed}|{site}|{attempt}")
        if rng.random() < self.drop:
            return []
        delays = [rng.random() * self.jitter if self.jitter > 0.0 else 0.0]
        if rng.random() < self.duplicate:
            spread = self.jitter if self.jitter > 0.0 else 1.0
            delays.append(rng.random() * spread)
        return delays


class FaultyWorld:
    """Installs a :class:`FaultPlan` onto an infrastructure.

    Usable as a context manager so tests can scope chaos to one block::

        with FaultyWorld(infrastructure, plan):
            engine.deploy(spec, policy=policy)
    """

    def __init__(
        self, infrastructure: "Infrastructure", plan: FaultPlan
    ) -> None:
        self.infrastructure = infrastructure
        self.plan = plan
        self.install()

    def install(self) -> None:
        self.infrastructure.set_fault_plan(self.plan)

    def remove(self) -> None:
        self.infrastructure.set_fault_plan(None)

    def __enter__(self) -> "FaultyWorld":
        self.install()
        return self

    def __exit__(self, *exc_info) -> None:
        self.remove()


@dataclass
class FaultRecord:
    """One injected failure (a process crash or a machine loss)."""

    timestamp: float
    process_name: str
    hostname: str
    instance_id: str = ""
    #: ``"process"`` for the classic injected process failure,
    #: ``"crash"`` (:attr:`FaultKind.CRASH`) for a permanent machine loss.
    kind: str = "process"


class FaultInjector:
    """Fails random running service processes of a deployed system."""

    def __init__(self, system: "DeployedSystem", seed: int = 0) -> None:
        self._system = system
        self._rng = random.Random(seed)
        self.records: list[FaultRecord] = []

    def _running_service_processes(self) -> list[tuple[str, SimProcess]]:
        from repro.drivers.library import ServiceDriver

        candidates: list[tuple[str, SimProcess]] = []
        for instance_id, driver in sorted(self._system.drivers.items()):
            if isinstance(driver, ServiceDriver):
                process = driver.process
                if process is not None and process.is_running():
                    candidates.append((instance_id, process))
        return candidates

    def inject(self, count: int = 1) -> list[FaultRecord]:
        """Fail up to ``count`` random running service processes."""
        candidates = self._running_service_processes()
        if not candidates:
            return []
        picked = self._rng.sample(candidates, min(count, len(candidates)))
        new_records: list[FaultRecord] = []
        for instance_id, process in picked:
            machine = self._system.machine_for(instance_id)
            process.fail()
            record = FaultRecord(
                timestamp=self._system.infrastructure.clock.now,
                process_name=process.name,
                hostname=machine.hostname,
                instance_id=instance_id,
            )
            new_records.append(record)
            self.records.append(record)
        return new_records

    def _live_hostnames(self) -> list[str]:
        """Hostnames of the system's machines still on the network."""
        network = self._system.infrastructure.network
        hostnames = {
            machine.hostname for machine in self._system.machines.values()
        }
        return sorted(h for h in hostnames if network.has_machine(h))

    def crash_machine(self, hostname: str) -> FaultRecord:
        """Permanently lose one machine (:attr:`FaultKind.CRASH`).

        Every process on it dies, the host (with its bound endpoints)
        drops off the network, and its package-manager state is
        forgotten -- from the fleet's point of view the hardware is
        gone.  Repair is the reconcile loop's job, not the monitor's.
        """
        infrastructure = self._system.infrastructure
        machine = infrastructure.network.machine(hostname)
        for process in machine.running_processes():
            process.fail()
        infrastructure.remove_machine(hostname)
        record = FaultRecord(
            timestamp=infrastructure.clock.now,
            process_name="",
            hostname=hostname,
            kind=FaultKind.CRASH.value,
        )
        self.records.append(record)
        tracer = infrastructure.tracer
        if tracer is not None:
            tracer.instant(
                "machine-lost", category="fault",
                timestamp=record.timestamp, lane=hostname,
            )
            tracer.metrics.counter("faults.machines_lost").inc()
        return record

    def crash_machines(self, count: int = 1) -> list[FaultRecord]:
        """Permanently lose up to ``count`` random live machines."""
        candidates = self._live_hostnames()
        picked = self._rng.sample(candidates, min(count, len(candidates)))
        return [self.crash_machine(hostname) for hostname in sorted(picked)]

    def campaign(
        self,
        monitor: "ProcessMonitor",
        rounds: int,
        *,
        max_failures_per_round: int = 2,
        seconds_between_rounds: float = 30.0,
    ) -> dict:
        """Run a kill/poll campaign: each round injects up to
        ``max_failures_per_round`` failures, advances time, and lets the
        monitor repair.  Returns summary counters."""
        clock = self._system.infrastructure.clock
        injected = 0
        restarted = 0
        for _ in range(rounds):
            failures = self.inject(
                self._rng.randint(0, max_failures_per_round)
            )
            injected += len(failures)
            clock.advance(seconds_between_rounds, "fault-campaign")
            restarted += len(monitor.poll())
        return {"injected": injected, "restarted": restarted}


class MachineChurn:
    """A deterministic schedule of permanent machine losses.

    Each round, every *live* machine of the system independently draws
    crash-or-survive from ``Random(f"{seed}|{round}|{hostname}")`` --
    per-site seeding in the :meth:`FaultPlan.seeded` style, so the loss
    schedule depends only on ``(seed, round, hostname)``: not on the
    order machines are visited, and not on how earlier rounds were
    repaired.  Two same-seed runs over the same fleet therefore lose
    the same machines at the same rounds, which is what makes chaos
    soaks replayable.
    """

    def __init__(
        self,
        system: "DeployedSystem",
        *,
        seed: int = 0,
        rate: float = 0.05,
        protect: Sequence[str] = (),
        max_losses_per_round: Optional[int] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.seed = seed
        self.rate = rate
        self.protect = frozenset(protect)
        self.max_losses_per_round = max_losses_per_round
        self.injector = FaultInjector(system, seed=seed)

    @property
    def records(self) -> list[FaultRecord]:
        """Every loss fired so far (shared with the injector)."""
        return self.injector.records

    def round(self, round_index: int) -> list[FaultRecord]:
        """Fire round ``round_index``'s losses; returns their records."""
        losses: list[str] = []
        for hostname in self.injector._live_hostnames():
            if hostname in self.protect:
                continue
            rng = random.Random(f"{self.seed}|{round_index}|{hostname}")
            if rng.random() < self.rate:
                losses.append(hostname)
        if self.max_losses_per_round is not None:
            losses = losses[: self.max_losses_per_round]
        return [self.injector.crash_machine(hostname) for hostname in losses]
