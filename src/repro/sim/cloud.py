"""Simulated cloud providers (the libcloud/Rackspace/AWS substitute).

"If a machine resource instance in the partial installation specification
does not include configuration details, and Engage is being run in a
cloud environment, a new virtual server is provisioned to perform the
role of that machine in the deployment" (S5.2).  A provider owns a set of
images (OS identities) and stamps out :class:`Machine` objects with
generated hostnames, charging simulated provisioning latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ProvisioningError
from repro.sim.clock import SimClock
from repro.sim.machine import Machine, OsIdentity
from repro.sim.network import Network


@dataclass(frozen=True)
class MachineImage:
    """A provisionable OS image with a size profile."""

    image_id: str
    os: OsIdentity
    cpu_cores: int = 2
    memory_mb: int = 4096


class CloudProvider:
    """One simulated IaaS region."""

    def __init__(
        self,
        name: str,
        network: Network,
        clock: SimClock,
        *,
        provision_seconds: float = 55.0,
    ) -> None:
        self.name = name
        self._network = network
        self._clock = clock
        self._provision_seconds = provision_seconds
        self._images: dict[str, MachineImage] = {}
        self._nodes: dict[str, Machine] = {}
        self._serial = 0

    # -- Images -----------------------------------------------------------

    def register_image(self, image: MachineImage) -> None:
        if image.image_id in self._images:
            raise ProvisioningError(f"duplicate image id: {image.image_id}")
        self._images[image.image_id] = image

    def images(self) -> list[MachineImage]:
        return [self._images[i] for i in sorted(self._images)]

    def find_image(self, os_name: str, os_version: str) -> MachineImage:
        for image in self.images():
            if image.os.name == os_name and image.os.version == os_version:
                return image
        raise ProvisioningError(
            f"{self.name}: no image for {os_name} {os_version}"
        )

    # -- Nodes -----------------------------------------------------------

    def provision(
        self, image_id: str, hostname: Optional[str] = None
    ) -> Machine:
        """Create a virtual server from an image (costs simulated time)."""
        image = self._images.get(image_id)
        if image is None:
            raise ProvisioningError(f"{self.name}: unknown image {image_id!r}")
        self._serial += 1
        hostname = hostname or f"{self.name}-node-{self._serial:03d}"
        if self._network.has_machine(hostname):
            raise ProvisioningError(f"hostname taken: {hostname}")
        self._clock.advance(
            self._provision_seconds, f"provision:{self.name}:{hostname}"
        )
        machine = Machine(
            hostname,
            image.os,
            self._network,
            self._clock,
            cpu_cores=image.cpu_cores,
            memory_mb=image.memory_mb,
        )
        self._nodes[hostname] = machine
        return machine

    def deprovision(self, hostname: str) -> None:
        machine = self._nodes.pop(hostname, None)
        if machine is None:
            raise ProvisioningError(f"{self.name}: no node {hostname!r}")
        self._network.unregister_machine(hostname)

    def nodes(self) -> list[Machine]:
        return [self._nodes[h] for h in sorted(self._nodes)]

    def __str__(self) -> str:
        return f"CloudProvider({self.name}, {len(self._nodes)} nodes)"


def standard_images() -> list[MachineImage]:
    """The image catalogue used by the case studies: the four OS choices
    of the Django experiments plus Windows for OpenMRS discussions."""
    return [
        MachineImage("mac-osx-10.5", OsIdentity("mac-osx", "10.5")),
        MachineImage("mac-osx-10.6", OsIdentity("mac-osx", "10.6")),
        MachineImage("ubuntu-10.04", OsIdentity("ubuntu-linux", "10.04")),
        MachineImage("ubuntu-10.10", OsIdentity("ubuntu-linux", "10.10")),
        MachineImage("windows-xp", OsIdentity("windows", "5.1")),
    ]
