"""Simulated processes (services and daemons).

Long-running components -- Tomcat, MySQL, gunicorn -- become
:class:`SimProcess` objects.  A process can *fail*, which is what the
monitoring experiment injects; the monitor notices and restarts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ProcessState(Enum):
    RUNNING = "running"
    STOPPED = "stopped"
    FAILED = "failed"


@dataclass
class SimProcess:
    """A process on a simulated machine."""

    pid: int
    name: str
    command: str
    listen_ports: tuple[int, ...] = ()
    state: ProcessState = ProcessState.RUNNING
    started_at: float = 0.0
    restarts: int = 0
    #: The resource instance that spawned this process, when known, so
    #: fault campaigns can be correlated back to spec instances.
    instance_id: str = ""
    #: How many times this process has crashed (injected or otherwise).
    failures: int = 0

    def is_running(self) -> bool:
        return self.state == ProcessState.RUNNING

    def fail(self) -> None:
        """Simulate a crash (used for monitor/restart experiments)."""
        if self.state == ProcessState.RUNNING:
            self.state = ProcessState.FAILED
            self.failures += 1

    def stop(self) -> None:
        self.state = ProcessState.STOPPED

    def __str__(self) -> str:
        ports = ",".join(str(p) for p in self.listen_ports)
        return f"[{self.pid}] {self.name} ({self.state.value}) ports={ports}"
