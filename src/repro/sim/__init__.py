"""The simulated infrastructure substrate: machines, processes, network,
package repository, OS-level package manager, and cloud providers.

The paper deployed onto real servers and Rackspace/AWS; this package is
the behaviour-preserving substitute (see DESIGN.md S3): services refuse
TCP connections until started, downloads cost simulated time, and cache
hits are cheap -- so ordering bugs and the cached-vs-internet experiment
are observable."""

from repro.sim.clock import ClockEvent, ClockSpan, ScheduledEvent, SimClock
from repro.sim.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRecord,
    FaultRule,
    FaultyWorld,
    InjectedFault,
    MachineChurn,
)
from repro.sim.cloud import CloudProvider, MachineImage, standard_images
from repro.sim.filesystem import VirtualFilesystem
from repro.sim.infrastructure import Infrastructure
from repro.sim.machine import Machine, OsIdentity
from repro.sim.network import ConnectionRefused, Endpoint, Network
from repro.sim.oslpm import InstalledPackage, OsPackageManager
from repro.sim.persistence import WORLD_FORMAT, load_world, save_world
from repro.sim.package_index import (
    DownloadService,
    PackageArtifact,
    PackageIndex,
)
from repro.sim.process import ProcessState, SimProcess

__all__ = [
    "ClockEvent",
    "ClockSpan",
    "ScheduledEvent",
    "SimClock",
    "CloudProvider",
    "MachineImage",
    "standard_images",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "FaultRule",
    "FaultyWorld",
    "InjectedFault",
    "MachineChurn",
    "VirtualFilesystem",
    "Infrastructure",
    "Machine",
    "OsIdentity",
    "ConnectionRefused",
    "Endpoint",
    "Network",
    "InstalledPackage",
    "OsPackageManager",
    "DownloadService",
    "PackageArtifact",
    "PackageIndex",
    "ProcessState",
    "SimProcess",
    "WORLD_FORMAT",
    "load_world",
    "save_world",
]
