"""Whole-world persistence for the simulated infrastructure.

The real Engage managed long-lived machines; the CLI simulates them
in-process, so managing a deployment from a *later* invocation needs the
world itself to survive.  :func:`save_world` serialises an entire
:class:`~repro.sim.infrastructure.Infrastructure` -- clock, package
index, download cache, machines with filesystems and processes, package
databases, cloud providers -- and :func:`load_world` reconstructs it,
rebinding the listening ports of still-running processes.

Together with :mod:`repro.runtime.state` this enables the CLI flow::

    engage-sim deploy spec.json --save-world w.json --save-state s.json
    engage-sim status w.json s.json
    engage-sim stop   w.json s.json
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.errors import SimulationError
from repro.sim.clock import ClockEvent
from repro.sim.infrastructure import Infrastructure
from repro.sim.machine import Machine, OsIdentity
from repro.sim.oslpm import InstalledPackage
from repro.sim.package_index import PackageArtifact
from repro.sim.process import ProcessState, SimProcess

WORLD_FORMAT = "engage-world-1"


def save_world(infrastructure: Infrastructure) -> str:
    """Serialise the whole simulation world to JSON."""
    payload: dict[str, Any] = {
        "format": WORLD_FORMAT,
        "clock": infrastructure.clock.now,
        "clock_events": [
            [event.start, event.duration, event.label]
            for event in infrastructure.clock.events()
        ],
        "use_cache": infrastructure.downloads._use_cache,
        "download_counters": {
            "downloads": infrastructure.downloads.downloads,
            "cache_hits": infrastructure.downloads.cache_hits,
        },
        "artifacts": [
            {
                "name": artifact.name,
                "version": artifact.version,
                "size_bytes": artifact.size_bytes,
                "files": [list(pair) for pair in artifact.files],
            }
            for artifact in _artifacts(infrastructure)
        ],
        "cache": sorted(
            list(key) for key in infrastructure.downloads._cache
        ),
        "machines": [
            _machine_payload(infrastructure, machine)
            for machine in infrastructure.network.machines()
        ],
        "providers": [
            {
                "name": provider.name,
                "provision_seconds": provider._provision_seconds,
                "serial": provider._serial,
                "nodes": [node.hostname for node in provider.nodes()],
            }
            for provider in infrastructure.providers()
        ],
    }
    return json.dumps(payload, indent=1) + "\n"


def _artifacts(infrastructure: Infrastructure) -> list[PackageArtifact]:
    index = infrastructure.package_index
    return [index._artifacts[key] for key in sorted(index._artifacts)]


def _machine_payload(
    infrastructure: Infrastructure, machine: Machine
) -> dict[str, Any]:
    snapshot = machine.fs.snapshot()
    manager = infrastructure.package_manager(machine)
    return {
        "hostname": machine.hostname,
        "ip_address": machine.ip_address,
        "os": {
            "name": machine.os.name,
            "version": machine.os.version,
            "arch": machine.os.arch,
        },
        "cpu_cores": machine.cpu_cores,
        "memory_mb": machine.memory_mb,
        "os_user_name": machine.os_user_name,
        "fs": {
            "files": snapshot["files"],
            "dirs": sorted(snapshot["dirs"]),
        },
        "next_pid": machine._next_pid,
        "processes": [
            {
                "pid": process.pid,
                "name": process.name,
                "command": process.command,
                "listen_ports": list(process.listen_ports),
                "state": process.state.value,
                "started_at": process.started_at,
                "restarts": process.restarts,
            }
            for process in machine.processes()
        ],
        "packages": [
            {
                "name": record.name,
                "version": record.version,
                "install_root": record.install_root,
                "files": list(record.files),
                "owners": sorted(record.owners),
            }
            for record in manager.installed()
        ],
    }


def load_world(text: str) -> Infrastructure:
    """Reconstruct an :class:`Infrastructure` saved by :func:`save_world`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"malformed world file: {exc}") from exc
    if not isinstance(payload, dict):
        raise SimulationError("world file must be a JSON object")
    if payload.get("format") != WORLD_FORMAT:
        raise SimulationError(
            f"unsupported world format: {payload.get('format')!r}"
        )

    infrastructure = Infrastructure(
        use_cache=payload.get("use_cache", True)
    )
    clock_events = payload.get("clock_events")
    if clock_events is None:
        # Pre-observability worlds: no event log, one opaque advance.
        infrastructure.clock.advance(payload["clock"], "world-load")
    else:
        infrastructure.clock.restore_events(
            [
                ClockEvent(start, duration, label)
                for start, duration, label in clock_events
            ]
        )
        infrastructure.clock.sync_to(payload["clock"])
    counters = payload.get("download_counters", {})
    infrastructure.downloads.downloads = counters.get("downloads", 0)
    infrastructure.downloads.cache_hits = counters.get("cache_hits", 0)

    for entry in payload["artifacts"]:
        infrastructure.package_index.publish(
            PackageArtifact(
                name=entry["name"],
                version=entry["version"],
                size_bytes=entry["size_bytes"],
                files=tuple(tuple(pair) for pair in entry["files"]),
            )
        )
    for name, version in payload.get("cache", []):
        infrastructure.downloads.prefetch(name, version)

    for machine_entry in payload["machines"]:
        _restore_machine(infrastructure, machine_entry)

    for provider_entry in payload.get("providers", []):
        provider = infrastructure.add_provider(
            provider_entry["name"],
            provision_seconds=provider_entry["provision_seconds"],
        )
        provider._serial = provider_entry["serial"]
        for hostname in provider_entry["nodes"]:
            provider._nodes[hostname] = infrastructure.network.machine(
                hostname
            )
    return infrastructure


def _restore_machine(
    infrastructure: Infrastructure, entry: dict[str, Any]
) -> None:
    machine = Machine(
        entry["hostname"],
        OsIdentity(
            entry["os"]["name"], entry["os"]["version"], entry["os"]["arch"]
        ),
        infrastructure.network,
        infrastructure.clock,
        ip_address=entry["ip_address"],
        cpu_cores=entry["cpu_cores"],
        memory_mb=entry["memory_mb"],
        os_user_name=entry["os_user_name"],
    )
    machine.fs.restore(
        {"files": dict(entry["fs"]["files"]),
         "dirs": set(entry["fs"]["dirs"])}
    )
    for process_entry in entry["processes"]:
        process = SimProcess(
            pid=process_entry["pid"],
            name=process_entry["name"],
            command=process_entry["command"],
            listen_ports=tuple(process_entry["listen_ports"]),
            state=ProcessState(process_entry["state"]),
            started_at=process_entry["started_at"],
            restarts=process_entry["restarts"],
        )
        machine._processes[process.pid] = process
        if process.is_running():
            for port in process.listen_ports:
                infrastructure.network.bind(
                    machine.hostname, port, process
                )
    machine._next_pid = entry["next_pid"]

    manager = infrastructure.package_manager(machine)
    manager.restore(
        {
            record["name"]: InstalledPackage(
                record["name"],
                record["version"],
                record["install_root"],
                list(record["files"]),
                set(record.get("owners", [record["name"]])),
            )
            for record in entry["packages"]
        }
    )
