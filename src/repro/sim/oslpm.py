"""A simulated OS-level package manager (dpkg/RPM/apt stand-in).

The paper positions Engage as *complementary* to OSLPMs: "a driver for a
resource can use an OSLPM to install the required packages on a machine".
This module is that building block: per-machine package records, install
with prerequisite checking, file payload unpacked into the machine's
filesystem, and removal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.errors import SimulationError
from repro.sim.machine import Machine
from repro.sim.package_index import DownloadService, PackageArtifact

#: Simulated seconds of unpack/install work per megabyte of artifact.
INSTALL_SECONDS_PER_MB = 0.35


@dataclass
class InstalledPackage:
    name: str
    version: str
    install_root: str
    files: list[str] = field(default_factory=list)
    #: Which installers (instance ids) currently depend on this package.
    #: Two replicas on one machine share one package record;
    #: uninstalling one replica must not delete the files the other
    #: still runs from.  Membership (not a count) keeps repeat installs
    #: by the same owner idempotent, which restore-then-redeploy relies
    #: on.
    owners: set[str] = field(default_factory=set)


class OsPackageManager:
    """The package database of one machine."""

    def __init__(self, machine: Machine, downloads: DownloadService) -> None:
        self._machine = machine
        self._downloads = downloads
        self._installed: dict[str, InstalledPackage] = {}

    def is_installed(self, name: str, version: Optional[str] = None) -> bool:
        record = self._installed.get(name)
        if record is None:
            return False
        return version is None or record.version == version

    def installed_version(self, name: str) -> Optional[str]:
        record = self._installed.get(name)
        return record.version if record else None

    def install(
        self,
        name: str,
        version: str,
        *,
        prerequisites: Sequence[str] = (),
        install_root: str = "/opt",
        owner: Optional[str] = None,
    ) -> InstalledPackage:
        """Download and unpack a package onto the machine.

        ``prerequisites`` are package names that must already be installed
        on this machine -- the OSLPM-level dependency check.  ``owner``
        names the installer (drivers pass their instance id): the record
        tracks every distinct owner, and only losing the last one removes
        the files.  Repeat installs by the same owner are no-ops.
        """
        for prerequisite in prerequisites:
            if not self.is_installed(prerequisite):
                raise SimulationError(
                    f"{self._machine.hostname}: package {name} requires "
                    f"{prerequisite} which is not installed"
                )
        plan = getattr(self._downloads, "fault_plan", None)
        if plan is not None:
            # Before any side effect: a faulted install is a clean no-op
            # (the flaky-mirror failure mode), so a retry starts fresh.
            plan.fire(
                f"oslpm:{self._machine.hostname}:install:{name}",
                self._machine.clock,
            )
        token = owner if owner is not None else name
        existing = self._installed.get(name)
        if existing is not None:
            if existing.version == version:
                # Shared install: the files are already on disk, so the
                # re-install only registers another owner of the record.
                existing.owners.add(token)
                return existing
            raise SimulationError(
                f"{self._machine.hostname}: {name} {existing.version} is "
                f"installed; remove it before installing {version}"
            )
        artifact = self._downloads.fetch(name, version)
        record = self._unpack(artifact, install_root)
        record.owners.add(token)
        self._installed[name] = record
        return record

    def _unpack(
        self, artifact: PackageArtifact, install_root: str
    ) -> InstalledPackage:
        install_seconds = (
            artifact.size_bytes / 1_000_000.0 * INSTALL_SECONDS_PER_MB
        )
        self._machine.clock.advance(
            install_seconds, f"install:{artifact.name}-{artifact.version}"
        )
        record = InstalledPackage(
            artifact.name, artifact.version, install_root
        )
        base = f"{install_root}/{artifact.name}-{artifact.version}"
        self._machine.fs.mkdir(base)
        for relative_path, content in artifact.files:
            path = f"{base}/{relative_path}"
            self._machine.fs.write_file(path, content)
            record.files.append(path)
        manifest = f"{base}/.manifest"
        self._machine.fs.write_file(
            manifest, f"{artifact.name} {artifact.version}\n"
        )
        record.files.append(manifest)
        return record

    def remove(self, name: str, *, owner: Optional[str] = None) -> None:
        """Withdraw ``owner``'s claim on ``name``; delete the files when
        the last owner is gone.  Without ``owner`` the package is
        removed outright (the operator's ``dpkg -r``)."""
        record = self._installed.get(name)
        if record is None:
            raise SimulationError(
                f"{self._machine.hostname}: package {name} is not installed"
            )
        if owner is not None:
            record.owners.discard(owner)
            if record.owners:
                return  # other installers still depend on the files
        del self._installed[name]
        base = f"{record.install_root}/{record.name}-{record.version}"
        if self._machine.fs.exists(base):
            self._machine.fs.remove(base)

    def installed(self) -> list[InstalledPackage]:
        return [self._installed[name] for name in sorted(self._installed)]

    def snapshot(self) -> dict:
        """Copy of the package database (pairs with machine snapshots so
        upgrade rollbacks restore both filesystem and package records)."""
        return {
            name: InstalledPackage(
                record.name,
                record.version,
                record.install_root,
                list(record.files),
                set(record.owners),
            )
            for name, record in self._installed.items()
        }

    def restore(self, snapshot: dict) -> None:
        self._installed = {
            name: InstalledPackage(
                record.name,
                record.version,
                record.install_root,
                list(record.files),
                set(record.owners),
            )
            for name, record in snapshot.items()
        }

    def install_path(self, name: str) -> str:
        record = self._installed.get(name)
        if record is None:
            raise SimulationError(
                f"{self._machine.hostname}: package {name} is not installed"
            )
        return f"{record.install_root}/{record.name}-{record.version}"
