"""Simulated machines.

A :class:`Machine` is a physical or virtual server: an OS identity, a
virtual filesystem, a process table, and a set of bound TCP ports on the
shared :class:`~repro.sim.network.Network`.  Engage's runtime tools
"determine properties of servers, such as hostname, IP address,
operating system, CPU architecture" (S5.2) -- :meth:`Machine.facts`
is that interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.filesystem import VirtualFilesystem
from repro.sim.network import Network
from repro.sim.process import ProcessState, SimProcess


@dataclass(frozen=True)
class OsIdentity:
    """The operating-system identity of a machine."""

    name: str  # e.g. "mac-osx", "ubuntu-linux"
    version: str  # e.g. "10.6"
    arch: str = "x86_64"

    def __str__(self) -> str:
        return f"{self.name} {self.version} ({self.arch})"


class Machine:
    """One simulated server."""

    def __init__(
        self,
        hostname: str,
        os: OsIdentity,
        network: Network,
        clock: SimClock,
        *,
        ip_address: str = "",
        cpu_cores: int = 2,
        memory_mb: int = 4096,
        os_user_name: str = "root",
    ) -> None:
        self.hostname = hostname
        self.os = os
        self.ip_address = ip_address or f"10.0.0.{abs(hash(hostname)) % 250 + 1}"
        self.cpu_cores = cpu_cores
        self.memory_mb = memory_mb
        self.os_user_name = os_user_name
        self.fs = VirtualFilesystem()
        self.network = network
        self.clock = clock
        self._processes: dict[int, SimProcess] = {}
        self._next_pid = 100
        for base_dir in ("/etc", "/opt", "/tmp", "/usr/local", "/var/log"):
            self.fs.mkdir(base_dir)
        network.register_machine(self)

    # -- Facts (the provisioning tools of S5.2) ---------------------------

    def facts(self) -> dict[str, object]:
        return {
            "hostname": self.hostname,
            "ip_address": self.ip_address,
            "os_name": self.os.name,
            "os_version": self.os.version,
            "arch": self.os.arch,
            "cpu_cores": self.cpu_cores,
            "memory_mb": self.memory_mb,
            "os_user_name": self.os_user_name,
        }

    # -- Processes ----------------------------------------------------------

    def spawn_process(
        self,
        name: str,
        command: str = "",
        listen_ports: Sequence[int] = (),
        instance_id: str = "",
    ) -> SimProcess:
        """Start a daemon; binds its listen ports on the network."""
        for port in listen_ports:
            if not self.network.is_port_free(self.hostname, port):
                raise SimulationError(
                    f"{self.hostname}: port {port} already in use"
                )
        pid = self._next_pid
        self._next_pid += 1
        process = SimProcess(
            pid=pid,
            name=name,
            command=command or name,
            listen_ports=tuple(listen_ports),
            started_at=self.clock.now,
            instance_id=instance_id,
        )
        self._processes[pid] = process
        for port in listen_ports:
            self.network.bind(self.hostname, port, process)
        return process

    def kill_process(self, pid: int) -> None:
        process = self._processes.get(pid)
        if process is None:
            raise SimulationError(f"{self.hostname}: no process {pid}")
        process.stop()
        for port in process.listen_ports:
            self.network.unbind(self.hostname, port)

    def process(self, pid: int) -> SimProcess:
        try:
            return self._processes[pid]
        except KeyError:
            raise SimulationError(f"{self.hostname}: no process {pid}") from None

    def processes(self) -> list[SimProcess]:
        return [self._processes[pid] for pid in sorted(self._processes)]

    def running_processes(self) -> list[SimProcess]:
        return [p for p in self.processes() if p.is_running()]

    def find_process(self, name: str) -> Optional[SimProcess]:
        """The most recent process with the given name, if any."""
        matches = [p for p in self.processes() if p.name == name]
        return matches[-1] if matches else None

    def restart_process(self, pid: int) -> SimProcess:
        """Replace a failed/stopped process with a fresh one (monit)."""
        old = self.process(pid)
        for port in old.listen_ports:
            self.network.unbind(self.hostname, port)
        fresh = self.spawn_process(
            old.name, old.command, old.listen_ports, old.instance_id
        )
        fresh.restarts = old.restarts + 1
        del self._processes[pid]
        return fresh

    # -- Snapshot / restore (upgrade backups) --------------------------------

    def snapshot(self) -> dict:
        return {
            "fs": self.fs.snapshot(),
            "processes": {
                pid: (p.name, p.command, p.listen_ports, p.state)
                for pid, p in self._processes.items()
            },
            "next_pid": self._next_pid,
        }

    def restore(self, snapshot: dict) -> None:
        """Restore filesystem state; all processes are stopped first (a
        restore models re-imaging the service tree, then the deployment
        engine restarts services)."""
        for process in self.running_processes():
            self.kill_process(process.pid)
        self.fs.restore(snapshot["fs"])
        self._processes = {}
        self._next_pid = snapshot["next_pid"]

    def __str__(self) -> str:
        return f"{self.hostname} [{self.os}]"
