"""A simulated clock.

All time in the simulated substrate flows through a :class:`SimClock`:
downloads, package installs, service startup delays, and provisioning all
``advance`` it.  Benchmarks read simulated durations off the clock, which
makes the cached-vs-internet install experiment (E4) deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import SimulationError


@dataclass
class ClockEvent:
    """One recorded advance: when it started, how long, and why."""

    start: float
    duration: float
    label: str


class SimClock:
    """Monotonic simulated time in seconds, with an event log."""

    def __init__(self) -> None:
        self._now = 0.0
        self._events: list[ClockEvent] = []

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float, label: str = "") -> None:
        if seconds < 0:
            raise SimulationError(f"cannot advance clock by {seconds}")
        self._events.append(ClockEvent(self._now, seconds, label))
        self._now += seconds

    def advance_to(self, timestamp: float, label: str = "") -> None:
        """Move the clock forward to an absolute time (no-op if past)."""
        if timestamp > self._now:
            self.advance(timestamp - self._now, label)

    def events(self) -> list[ClockEvent]:
        return list(self._events)

    def elapsed_by_label(self) -> dict[str, float]:
        """Total simulated seconds per event label."""
        totals: dict[str, float] = {}
        for event in self._events:
            totals[event.label] = totals.get(event.label, 0.0) + event.duration
        return totals

    def reset(self) -> None:
        self._now = 0.0
        self._events.clear()
