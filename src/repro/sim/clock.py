"""A simulated clock.

All time in the simulated substrate flows through a :class:`SimClock`:
downloads, package installs, service startup delays, and provisioning all
``advance`` it.  Benchmarks read simulated durations off the clock, which
makes the cached-vs-internet install experiment (E4) deterministic.

Besides the plain monotonic mode, the clock has an *event-queue* mode
used by the parallel deployment scheduler
(:mod:`repro.runtime.scheduler`): callers :meth:`schedule` future
completion events and :meth:`advance_to_next_event` jumps straight to
the earliest one, while :meth:`overlapping` spans let several logical
workers each accumulate simulated time from a common start instant --
the substrate is single-threaded, but the *timelines* overlap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.errors import SimulationError


@dataclass
class ClockEvent:
    """One recorded advance: when it started, how long, and why."""

    start: float
    duration: float
    label: str


@dataclass
class ScheduledEvent:
    """A future event on the queue (event-queue mode).

    ``seq`` is the deterministic tie-breaker: two events at the same
    simulated instant pop in the order they were scheduled, so schedules
    are bit-reproducible.
    """

    at: float
    seq: int
    label: str = ""
    payload: Any = None


class ClockSpan:
    """A scoped, possibly-overlapping stretch of simulated work.

    Entering the span rewinds ``now`` to ``start``; everything the block
    advances accumulates from there; leaving restores ``now`` to where
    it was, with the block's extent available as ``elapsed`` / ``end``.
    This is how logically-concurrent workers share one single-threaded
    clock: each executes in its own span from the common dispatch
    instant, and the scheduler's event queue decides which completion
    the world observes next.  Spans nest (a coordinator wave span may
    contain a whole slave deployment, scheduler spans included).
    """

    def __init__(self, clock: "SimClock", start: float) -> None:
        self._clock = clock
        self._saved = start
        self.start = start
        self.end = start
        self.elapsed = 0.0

    def __enter__(self) -> "ClockSpan":
        self._saved = self._clock._now
        self._clock._now = self.start
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._clock._now
        self.elapsed = self.end - self.start
        self._clock._now = self._saved
        return False


class SimClock:
    """Monotonic simulated time in seconds, with an event log."""

    def __init__(self) -> None:
        self._now = 0.0
        self._events: list[ClockEvent] = []
        self._queue: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float, label: str = "") -> None:
        if seconds < 0:
            raise SimulationError(f"cannot advance clock by {seconds}")
        self._events.append(ClockEvent(self._now, seconds, label))
        self._now += seconds

    def advance_to(self, timestamp: float, label: str = "") -> None:
        """Move the clock forward to an absolute time (no-op if past)."""
        if timestamp > self._now:
            self.advance(timestamp - self._now, label)

    def sync_to(self, timestamp: float) -> None:
        """Move ``now`` forward *without* logging a span.

        Used when overlapping spans already account for the elapsed
        stretch (logging it again would double-count the time in
        :meth:`elapsed_by_label`).
        """
        if timestamp > self._now:
            self._now = timestamp

    # -- Event-queue mode ------------------------------------------------

    def schedule(
        self, at: float, label: str = "", payload: Any = None
    ) -> ScheduledEvent:
        """Enqueue an event at absolute time ``at`` (clamped to now)."""
        event = ScheduledEvent(max(at, self._now), self._seq, label, payload)
        self._seq += 1
        heapq.heappush(self._queue, (event.at, event.seq, event))
        return event

    def advance_to_next_event(self) -> Optional[ScheduledEvent]:
        """Pop the earliest scheduled event and jump ``now`` to it.

        The jump itself is not logged: the stretch is covered by the
        overlapping spans of whatever work the event completes.  Returns
        ``None`` when the queue is empty.
        """
        if not self._queue:
            return None
        at, _, event = heapq.heappop(self._queue)
        if at > self._now:
            self._now = at
        return event

    def pending_events(self) -> int:
        return len(self._queue)

    def peek_next_event_time(self) -> Optional[float]:
        """The timestamp of the earliest scheduled event, without popping
        it (``None`` when the queue is empty).  Control loops that share
        the clock with the DAG scheduler use this to avoid jumping the
        simulation past an event someone else scheduled."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def cancel_events(self) -> int:
        """Drop every pending scheduled event; returns how many.

        Used when the logical owner of the events dies mid-pass (a slave
        agent crashing between actions abandons its in-flight completion
        events) -- leaving them queued would leak into the next pass's
        :meth:`advance_to_next_event` loop.
        """
        cancelled = len(self._queue)
        self._queue.clear()
        return cancelled

    def overlapping(self, start: Optional[float] = None) -> ClockSpan:
        """A span of work logically beginning at ``start`` (default now),
        overlapping whatever else is in flight.  Use as a context
        manager; read ``elapsed`` / ``end`` afterwards."""
        return ClockSpan(self, self._now if start is None else start)

    # -- Introspection ---------------------------------------------------

    def events(self) -> list[ClockEvent]:
        """All recorded advances, ordered by start time.

        Parallel passes append events out of time order (each worker
        span logs with its own local timestamps), so the log is merged
        by start on the way out; the sort is stable, preserving the
        relative order of same-instant events.
        """
        return sorted(self._events, key=lambda event: event.start)

    def restore_events(self, events: list[ClockEvent]) -> None:
        """Replace the event log wholesale (world persistence: a loaded
        world carries its original history, not one opaque advance)."""
        self._events = list(events)

    def elapsed_by_label(self) -> dict[str, float]:
        """Total simulated seconds per event label.

        Totals are order-independent, so interleaved parallel events sum
        correctly; note that overlapping spans mean the grand total can
        exceed wall-clock ``now`` (it is worker-seconds, not makespan).
        """
        totals: dict[str, float] = {}
        for event in self._events:
            totals[event.label] = totals.get(event.label, 0.0) + event.duration
        return totals

    def reset(self) -> None:
        self._now = 0.0
        self._events.clear()
        self._queue.clear()
        self._seq = 0
