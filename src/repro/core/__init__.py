"""The declarative resource model: keys, ports, types, subtyping,
registry, well-formedness, and installation specifications (S3)."""

from repro.core.builder import ResourceTypeBuilder, as_key, define
from repro.core.errors import (
    AbstractFrontierError,
    AbstractInstantiationError,
    ConfigurationError,
    CycleError,
    DeploymentError,
    DriverError,
    DuplicateKeyError,
    EngageError,
    GuardError,
    MissingInsideError,
    ParseError,
    PortError,
    PortTypeError,
    ProvisioningError,
    ResourceModelError,
    RuntimeEngageError,
    SimulationError,
    SpecError,
    SubtypingError,
    TypecheckError,
    UnknownKeyError,
    UnsatisfiableError,
    UpgradeError,
    WellFormednessError,
)
from repro.core.instances import (
    DependencyLink,
    InstallSpec,
    InstanceRef,
    PartialInstallSpec,
    PartialInstance,
    ResourceInstance,
)
from repro.core.keys import (
    UNVERSIONED,
    ResourceKey,
    Version,
    VersionRange,
    select_versions,
)
from repro.core.ports import (
    BOOL,
    FLOAT,
    HOSTNAME,
    INT,
    PASSWORD,
    PATH,
    STRING,
    TCP_PORT,
    Binding,
    ListType,
    Port,
    PortType,
    RecordType,
    ScalarKind,
    ScalarType,
    scalar_by_name,
)
from repro.core.registry import ResourceTypeRegistry
from repro.core.resource_type import (
    ConfigPort,
    Dependency,
    DependencyAlternative,
    DependencyKind,
    OutputPort,
    PortMapping,
    ResourceType,
)
from repro.core.subtyping import nominal_subtype, structural_subtype
from repro.core.values import (
    Expr,
    Format,
    Lit,
    ListExpr,
    PortEnv,
    RecordExpr,
    Ref,
    Space,
    config_ref,
    input_ref,
    is_constant,
)
from repro.core.wellformed import assert_well_formed, check_registry

__all__ = [name for name in dir() if not name.startswith("_")]
