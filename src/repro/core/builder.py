"""A fluent builder for :class:`~repro.core.resource_type.ResourceType`.

The resource library (``repro.library``) defines dozens of types; this
builder keeps those definitions close to the concrete DSL syntax while
staying plain Python.  Example::

    tomcat = (
        define("Tomcat", "6.0.18", driver="tomcat")
        .inside("Server", host="host")
        .env("Java", java="java")
        .config("manager_port", TCP_PORT, default=8080)
        .output("tomcat", RecordType.of(hostname=HOSTNAME, port=TCP_PORT),
                value=RecordExpr.of(hostname=input_ref("host", "hostname"),
                                    port=config_ref("manager_port")))
        .build()
    )
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Union

from repro.core.keys import ResourceKey
from repro.core.ports import Binding, Port, PortType
from repro.core.resource_type import (
    ConfigPort,
    Dependency,
    DependencyAlternative,
    DependencyKind,
    OutputPort,
    PortMapping,
    ResourceType,
)
from repro.core.values import Expr, Lit

KeyLike = Union[str, ResourceKey]
AltLike = Union[KeyLike, DependencyAlternative]


def as_key(key: KeyLike) -> ResourceKey:
    """Coerce a string such as ``"Tomcat 6.0.18"`` to a ResourceKey."""
    if isinstance(key, ResourceKey):
        return key
    return ResourceKey.parse(key)


def _as_expr(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


def _as_alternative(alt: AltLike, mapping: PortMapping) -> DependencyAlternative:
    if isinstance(alt, DependencyAlternative):
        return alt
    return DependencyAlternative(as_key(alt), mapping)


class ResourceTypeBuilder:
    """Accumulates the pieces of a resource type, then :meth:`build`\\ s it."""

    def __init__(
        self,
        name: str,
        version: str = "",
        *,
        abstract: bool = False,
        extends: Optional[KeyLike] = None,
        driver: str = "null",
    ) -> None:
        display = f"{name} {version}".strip()
        self._key = as_key(display)
        self._abstract = abstract
        self._extends = as_key(extends) if extends is not None else None
        self._driver = driver
        self._inputs: list[Port] = []
        self._configs: list[ConfigPort] = []
        self._outputs: list[OutputPort] = []
        self._inside: Optional[Dependency] = None
        self._environment: list[Dependency] = []
        self._peers: list[Dependency] = []

    # -- Ports ----------------------------------------------------------

    def input(self, name: str, type_: PortType) -> "ResourceTypeBuilder":
        self._inputs.append(Port(name, type_))
        return self

    def config(
        self,
        name: str,
        type_: PortType,
        default: Any = None,
        *,
        static: bool = False,
    ) -> "ResourceTypeBuilder":
        binding = Binding.STATIC if static else Binding.DYNAMIC
        self._configs.append(
            ConfigPort(Port(name, type_, binding), _as_expr(default))
        )
        return self

    def output(
        self,
        name: str,
        type_: PortType,
        value: Any = None,
        *,
        static: bool = False,
    ) -> "ResourceTypeBuilder":
        binding = Binding.STATIC if static else Binding.DYNAMIC
        self._outputs.append(
            OutputPort(Port(name, type_, binding), _as_expr(value))
        )
        return self

    # -- Dependencies ---------------------------------------------------

    def inside(self, *alternatives: AltLike, **mapping: str) -> "ResourceTypeBuilder":
        """Declare the inside dependency.  ``mapping`` keywords are the
        provider's output ports; values are this resource's input ports."""
        self._inside = self._dependency(
            DependencyKind.INSIDE, alternatives, mapping
        )
        return self

    def env(self, *alternatives: AltLike, **mapping: str) -> "ResourceTypeBuilder":
        """Add an environment dependency (same-machine prerequisite)."""
        self._environment.append(
            self._dependency(DependencyKind.ENVIRONMENT, alternatives, mapping)
        )
        return self

    def peer(self, *alternatives: AltLike, **mapping: str) -> "ResourceTypeBuilder":
        """Add a peer dependency (service possibly on another machine)."""
        self._peers.append(
            self._dependency(DependencyKind.PEER, alternatives, mapping)
        )
        return self

    def env_dep(self, dependency: Dependency) -> "ResourceTypeBuilder":
        """Add a pre-built environment dependency (for reverse mappings)."""
        self._environment.append(dependency)
        return self

    def peer_dep(self, dependency: Dependency) -> "ResourceTypeBuilder":
        self._peers.append(dependency)
        return self

    def inside_dep(self, dependency: Dependency) -> "ResourceTypeBuilder":
        self._inside = dependency
        return self

    @staticmethod
    def _dependency(
        kind: DependencyKind,
        alternatives: tuple[AltLike, ...],
        mapping: dict[str, str],
    ) -> Dependency:
        pmap = PortMapping.of(**mapping)
        alts = tuple(_as_alternative(alt, pmap) for alt in alternatives)
        return Dependency(kind, alts)

    # -- Build ----------------------------------------------------------

    def build(self) -> ResourceType:
        return ResourceType(
            key=self._key,
            abstract=self._abstract,
            extends=self._extends,
            input_ports=tuple(self._inputs),
            config_ports=tuple(self._configs),
            output_ports=tuple(self._outputs),
            inside=self._inside,
            environment=tuple(self._environment),
            peers=tuple(self._peers),
            driver_name=self._driver,
        )


def define(
    name: str,
    version: str = "",
    *,
    abstract: bool = False,
    extends: Optional[KeyLike] = None,
    driver: str = "null",
) -> ResourceTypeBuilder:
    """Start building a resource type; see :class:`ResourceTypeBuilder`."""
    return ResourceTypeBuilder(
        name, version, abstract=abstract, extends=extends, driver=driver
    )
