"""The Figure 4 subtyping rules.

Figure 4 of the paper defines ``<=in`` / ``<=conf`` / ``<=out`` on ports,
their lifting to port *sets* and port mappings, and ``<=RT`` on resource
types.  Input ports are contravariant in the base-type relation and
config/output ports covariant -- "related to the usual co-variance and
contra-variance of method arguments".

Two entry points are exported:

* :func:`nominal_subtype` -- the ``extends``-chain relation the rest of
  the system uses for matching (fast, and sound because the registry
  verifies every declared ``extends`` edge structurally at registration).
* :func:`structural_subtype` -- the full Figure 4 check on two flattened
  resource types.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.keys import ResourceKey
from repro.core.ports import Port
from repro.core.resource_type import (
    ConfigPort,
    Dependency,
    OutputPort,
    PortMapping,
    ResourceType,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.registry import ResourceTypeRegistry


def input_port_subtype(sub: Port, sup: Port) -> bool:
    """``sub <=in sup``: same name, contravariant type."""
    return sub.name == sup.name and sup.type.is_subtype_of(sub.type)


def config_port_subtype(sub: ConfigPort, sup: ConfigPort) -> bool:
    """``sub <=conf sup``: same name, covariant type."""
    return sub.name == sup.name and sub.port.type.is_subtype_of(sup.port.type)


def output_port_subtype(sub: OutputPort, sup: OutputPort) -> bool:
    """``sub <=out sup``: same name, covariant type."""
    return sub.name == sup.name and sub.port.type.is_subtype_of(sup.port.type)


def _port_set_subtype(sub_ports, sup_ports, port_rel: Callable) -> bool:
    """Lift a port relation to sets: every super port must be matched by a
    sub port of the same name in the relation (width subtyping: the sub
    may declare more ports)."""
    by_name = {p.name: p for p in sub_ports}
    for sup_port in sup_ports:
        sub_port = by_name.get(sup_port.name)
        if sub_port is None or not port_rel(sub_port, sup_port):
            return False
    return True


def port_mapping_subtype(sub: PortMapping, sup: PortMapping) -> bool:
    """``sub <=pm sup``: every entry of the super mapping is present in the
    sub mapping (the sub may map additional ports)."""
    return set(sup.entries) <= set(sub.entries)


def _dependency_subtype(
    sub: Dependency, sup: Dependency, key_rel: Callable[[ResourceKey, ResourceKey], bool]
) -> bool:
    """Each alternative of the sub dependency must target a subtype of some
    alternative of the super dependency, with a compatible port mapping."""
    for sub_alt in sub.alternatives:
        if not any(
            key_rel(sub_alt.key, sup_alt.key)
            and port_mapping_subtype(sub_alt.port_mapping, sup_alt.port_mapping)
            for sup_alt in sup.alternatives
        ):
            return False
    return True


def nominal_subtype(
    registry: "ResourceTypeRegistry", sub: ResourceKey, sup: ResourceKey
) -> bool:
    """``sub <=RT sup`` via the declared ``extends`` chain (refl/trans)."""
    current: ResourceKey | None = sub
    seen: set[ResourceKey] = set()
    while current is not None:
        if current == sup:
            return True
        if current in seen:  # defensive; registry rejects extends cycles
            return False
        seen.add(current)
        current = registry.raw(current).extends if registry.has(current) else None
    return False


def structural_subtype(
    registry: "ResourceTypeRegistry", sub: ResourceType, sup: ResourceType
) -> bool:
    """The full Figure 4 ``<=RT`` check on two *flattened* resource types.

    Dependency keys are compared with :func:`nominal_subtype`; this matches
    the paper's use of the rules on a declared subclass tree and keeps the
    check terminating without a coinductive hypothesis.
    """
    key_rel = lambda a, b: nominal_subtype(registry, a, b)

    if not _port_set_subtype(sub.input_ports, sup.input_ports, input_port_subtype):
        return False
    if not _port_set_subtype(sub.config_ports, sup.config_ports, config_port_subtype):
        return False
    if not _port_set_subtype(sub.output_ports, sup.output_ports, output_port_subtype):
        return False

    # Inside: both null, or sub's inside refines sup's.
    if sup.inside is not None:
        if sub.inside is None:
            return False
        if not _dependency_subtype(sub.inside, sup.inside, key_rel):
            return False

    # Environment and peer: every super dependency must be matched by some
    # sub dependency.
    for sup_dep in sup.environment:
        if not any(
            _dependency_subtype(sub_dep, sup_dep, key_rel)
            for sub_dep in sub.environment
        ):
            return False
    for sup_dep in sup.peers:
        if not any(
            _dependency_subtype(sub_dep, sup_dep, key_rel) for sub_dep in sub.peers
        ):
            return False
    return True
