"""Resource types: the paper's core abstraction (S3).

Formally a resource type is ``R = (key, InP, ConfP, OutP, Inside, Env,
Peer)``: a globally unique key, three disjoint sets of ports, an optional
inside dependency, and sets of environment and peer dependencies.  Each
dependency is a pair ``(key', pmap)`` where ``pmap`` partially maps the
provider's output ports to this resource's input ports.

The S3.4 sugar is represented directly: dependencies hold a *disjunction*
of alternatives (lowered from abstract supertypes or version ranges), and
each alternative can additionally carry a *reverse mapping* from this
resource's static output ports to the provider's input ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Optional

from repro.core.errors import PortError, ResourceModelError
from repro.core.keys import ResourceKey
from repro.core.ports import Binding, Port, PortType
from repro.core.values import Expr, Lit, Space, is_constant


class DependencyKind(Enum):
    """The three dependency flavours of S3.1."""

    INSIDE = "inside"
    ENVIRONMENT = "environment"
    PEER = "peer"


@dataclass(frozen=True)
class PortMapping:
    """A partial map from provider output-port names to dependent
    input-port names: ``entries`` is a tuple of ``(output, input)``."""

    entries: tuple[tuple[str, str], ...] = ()

    @staticmethod
    def of(**mapping: str) -> "PortMapping":
        """``PortMapping.of(java="java")`` maps output ``java`` to input
        ``java`` (keyword = provider output port, value = my input port)."""
        return PortMapping(tuple(sorted(mapping.items())))

    def output_ports(self) -> tuple[str, ...]:
        return tuple(output for output, _ in self.entries)

    def input_ports(self) -> tuple[str, ...]:
        return tuple(input_ for _, input_ in self.entries)

    def as_dict(self) -> dict[str, str]:
        return dict(self.entries)

    def is_empty(self) -> bool:
        return not self.entries

    def __post_init__(self) -> None:
        inputs = [i for _, i in self.entries]
        if len(inputs) != len(set(inputs)):
            raise PortError(
                f"port mapping maps the same input port twice: {self.entries}"
            )

    def __str__(self) -> str:
        return ", ".join(f"{o} -> {i}" for o, i in self.entries)


@dataclass(frozen=True)
class DependencyAlternative:
    """One disjunct of a dependency: a target key plus its port mappings.

    ``port_mapping`` flows provider outputs into this resource's inputs.
    ``reverse_mapping`` (S3.4 extension) flows this resource's *static*
    output ports into the provider's inputs -- used e.g. to pass a server
    configuration file from OpenMRS back to Tomcat.
    """

    key: ResourceKey
    port_mapping: PortMapping = PortMapping()
    reverse_mapping: PortMapping = PortMapping()

    def __str__(self) -> str:
        text = str(self.key)
        if not self.port_mapping.is_empty():
            text += f" {{{self.port_mapping}}}"
        return text


@dataclass(frozen=True)
class Dependency:
    """A dependency of one kind, as a disjunction of alternatives.

    A singleton tuple of alternatives is the paper's plain ``(key, pmap)``
    dependency; longer tuples come from the disjunction / version-range /
    abstract-frontier sugar.  To keep the well-formedness check simple the
    paper requires disjunctively combined port mappings to have identical
    ranges; we enforce that here.
    """

    kind: DependencyKind
    alternatives: tuple[DependencyAlternative, ...]

    def __post_init__(self) -> None:
        if not self.alternatives:
            raise ResourceModelError("dependency with no alternatives")
        ranges = {
            frozenset(alt.port_mapping.input_ports()) for alt in self.alternatives
        }
        if len(ranges) > 1:
            raise ResourceModelError(
                "disjunctive dependency alternatives must map identical "
                f"input-port ranges, got {sorted(map(sorted, ranges))}"
            )

    @staticmethod
    def single(
        kind: DependencyKind,
        key: ResourceKey,
        port_mapping: PortMapping = PortMapping(),
        reverse_mapping: PortMapping = PortMapping(),
    ) -> "Dependency":
        return Dependency(
            kind, (DependencyAlternative(key, port_mapping, reverse_mapping),)
        )

    def keys(self) -> tuple[ResourceKey, ...]:
        return tuple(alt.key for alt in self.alternatives)

    def mapped_inputs(self) -> frozenset[str]:
        """The input ports this dependency fills (identical across
        alternatives by construction)."""
        return frozenset(self.alternatives[0].port_mapping.input_ports())

    def __str__(self) -> str:
        alts = " | ".join(str(alt) for alt in self.alternatives)
        return f"{self.kind.value} ({alts})"


@dataclass(frozen=True)
class ConfigPort:
    """A config port with its default expression.

    Per S3.1 the default is "either a default constant or defined as a
    function of the ports in InP".  Static config ports (S3.4) must be
    constants.
    """

    port: Port
    default: Expr = field(default_factory=lambda: Lit(None))

    def __post_init__(self) -> None:
        for space, _ in self.default.references():
            if space != Space.INPUT:
                raise PortError(
                    f"config port {self.port.name!r} default may only read "
                    f"input ports, found {space.value} reference"
                )
        if self.port.binding == Binding.STATIC and not is_constant(self.default):
            raise PortError(
                f"static config port {self.port.name!r} must be a constant"
            )

    @property
    def name(self) -> str:
        return self.port.name


@dataclass(frozen=True)
class OutputPort:
    """An output port with its defining expression.

    Per S3.1 the value is "either a default constant or defined as a
    function of the ports in InP + ConfP".  Static output ports must be
    constants or functions of static config ports; that refinement is
    checked by the registry, which knows the bindings of config ports.
    """

    port: Port
    value: Expr = field(default_factory=lambda: Lit(None))

    @property
    def name(self) -> str:
        return self.port.name


@dataclass(frozen=True)
class ResourceType:
    """A resource type (class-like): metadata, ports, and dependencies.

    ``extends`` names an optional super-resource type; the registry
    flattens inheritance and checks the Figure 4 subtyping rules.
    ``driver_name`` names the driver implementation used at deployment
    time (the paper's resources pair a type with a driver).
    """

    key: ResourceKey
    abstract: bool = False
    extends: Optional[ResourceKey] = None
    input_ports: tuple[Port, ...] = ()
    config_ports: tuple[ConfigPort, ...] = ()
    output_ports: tuple[OutputPort, ...] = ()
    inside: Optional[Dependency] = None
    environment: tuple[Dependency, ...] = ()
    peers: tuple[Dependency, ...] = ()
    driver_name: str = "null"

    def __post_init__(self) -> None:
        names: list[str] = (
            [p.name for p in self.input_ports]
            + [p.name for p in self.config_ports]
            + [p.name for p in self.output_ports]
        )
        if len(names) != len(set(names)):
            raise PortError(
                f"{self.key}: input/config/output port names must be "
                f"disjoint, got {sorted(names)}"
            )
        for port in self.input_ports:
            if port.binding == Binding.STATIC:
                raise PortError(
                    f"{self.key}: input port {port.name!r} cannot be static"
                )
        if self.inside is not None and self.inside.kind != DependencyKind.INSIDE:
            raise ResourceModelError(f"{self.key}: inside slot holds {self.inside.kind}")
        for dep in self.environment:
            if dep.kind != DependencyKind.ENVIRONMENT:
                raise ResourceModelError(
                    f"{self.key}: environment slot holds {dep.kind}"
                )
        for dep in self.peers:
            if dep.kind != DependencyKind.PEER:
                raise ResourceModelError(f"{self.key}: peer slot holds {dep.kind}")

    # -- Lookup helpers -------------------------------------------------

    def input_port(self, name: str) -> Port:
        for port in self.input_ports:
            if port.name == name:
                return port
        raise PortError(f"{self.key} has no input port {name!r}")

    def config_port(self, name: str) -> ConfigPort:
        for port in self.config_ports:
            if port.name == name:
                return port
        raise PortError(f"{self.key} has no config port {name!r}")

    def output_port(self, name: str) -> OutputPort:
        for port in self.output_ports:
            if port.name == name:
                return port
        raise PortError(f"{self.key} has no output port {name!r}")

    def has_input_port(self, name: str) -> bool:
        return any(p.name == name for p in self.input_ports)

    def input_port_names(self) -> frozenset[str]:
        return frozenset(p.name for p in self.input_ports)

    def dependencies(self) -> tuple[Dependency, ...]:
        """All dependencies: inside (if any) then environment then peer."""
        deps: tuple[Dependency, ...] = ()
        if self.inside is not None:
            deps += (self.inside,)
        return deps + self.environment + self.peers

    def is_machine(self) -> bool:
        """A machine is a resource whose inside dependency is null."""
        return self.inside is None

    def __str__(self) -> str:
        return str(self.key)
