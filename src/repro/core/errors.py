"""Exception hierarchy for the Engage reproduction.

Every error raised by the public API derives from :class:`EngageError` so
callers can catch a single base class.  Subclasses partition the failure
modes along the paper's three components: the declarative resource model,
the configuration engine, and the runtime system.
"""

from __future__ import annotations


class EngageError(Exception):
    """Base class for all errors raised by this library."""


class ResourceModelError(EngageError):
    """A problem in resource-type definitions (the declarative model)."""


class DuplicateKeyError(ResourceModelError):
    """Two resource types were registered under the same key."""


class UnknownKeyError(ResourceModelError):
    """A dependency or lookup referenced a key with no registered type."""


class SubtypingError(ResourceModelError):
    """A sub-resource type violates the Figure 4 subtyping rules."""


class WellFormednessError(ResourceModelError):
    """A set of resource types violates a well-formedness condition (S3.1)."""


class PortError(ResourceModelError):
    """A port definition, reference, or value is invalid."""


class PortTypeError(PortError):
    """A value does not inhabit the declared port type."""


class AbstractInstantiationError(ResourceModelError):
    """An abstract resource type was instantiated directly."""


class AbstractFrontierError(ResourceModelError):
    """An abstract resource has no concrete frontier (S4, GraphGen)."""


class ConfigurationError(EngageError):
    """A problem during configuration (hypergraph / constraints / solving)."""


class UnsatisfiableError(ConfigurationError):
    """The generated Boolean constraints are unsatisfiable (Theorem 1)."""


class MissingInsideError(ConfigurationError):
    """A partial instance does not resolve its inside dependency.

    The paper assumes "the partial installation specification resolves
    inside dependencies of each resource instance in it" -- the system does
    not generate new machines automatically.
    """


class SpecError(ConfigurationError):
    """An installation specification (partial or full) is malformed."""


class TypecheckError(ConfigurationError):
    """A full installation specification failed static checking."""


class CycleError(ConfigurationError):
    """Dependencies among resource instances or types form a cycle."""


class RuntimeEngageError(EngageError):
    """A problem during deployment or management."""


class DriverError(RuntimeEngageError):
    """A resource driver failed or was driven illegally."""


class GuardError(DriverError):
    """A transition was attempted while its guard was false."""


class TransientError(RuntimeEngageError):
    """A failure that may succeed if the operation is retried.

    The fault-injection layer raises these for transient failure modes
    (flaky downloads, slow dependency startup); a
    :class:`~repro.runtime.retry.RetryPolicy` classifies them as
    retryable by default.
    """


class ActionTimeout(TransientError):
    """A driver action exceeded its per-action timeout budget.

    Raised when a hung operation consumed the whole budget granted by
    the retry policy; retrying may hit a shorter (or no) hang.
    """


class DeploymentError(RuntimeEngageError):
    """The deployment engine could not bring the system to `active`."""


class DeploymentFailure(DeploymentError):
    """A deployment stopped at a consistent frontier.

    Carries everything needed to understand and resume the run: the
    write-ahead ``journal`` (a
    :class:`~repro.runtime.journal.DeploymentJournal`, or ``None`` when
    the failing pass was not journalled), the ``completed`` /
    ``failed`` / ``skipped`` instance-id sets, the partial ``report``,
    and the partially-driven ``system``.  No instance is ever left
    mid-transition: a failed action does not advance its driver's state
    machine, and instances after the failure point (all dependents of
    the failed instance included) are untouched.
    """

    def __init__(
        self,
        message: str,
        *,
        journal=None,
        completed=(),
        failed=(),
        skipped=(),
        report=None,
        system=None,
    ) -> None:
        super().__init__(message)
        self.journal = journal
        self.completed = frozenset(completed)
        self.failed = frozenset(failed)
        self.skipped = frozenset(skipped)
        self.report = report
        self.system = system


class ProvisioningError(RuntimeEngageError):
    """A machine could not be provisioned from the cloud provider."""


class UpgradeError(RuntimeEngageError):
    """An upgrade failed (and, per the paper, should trigger rollback)."""


class SimulationError(EngageError):
    """A problem inside the simulated infrastructure substrate."""


class ParseError(EngageError):
    """A problem while lexing or parsing DSL source text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)
