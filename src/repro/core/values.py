"""Port-value expressions.

The paper requires that "each port p in ConfP is either a default constant
or defined as a function of the ports in InP, and each port p in OutP is
either a default constant or defined as a function of the ports in
InP + ConfP" (S3.1).  This module is that function language: a small,
side-effect-free expression AST evaluated against the already-known port
values of an instance during propagation (S4).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Mapping

from repro.core.errors import PortError


class Space(Enum):
    """Which port namespace a reference reads from."""

    INPUT = "input"
    CONFIG = "config"


class Expr:
    """Abstract base of port-value expressions."""

    def evaluate(self, env: "PortEnv") -> Any:
        raise NotImplementedError

    def references(self) -> set[tuple[Space, str]]:
        """The (space, port-name) pairs this expression reads."""
        raise NotImplementedError


@dataclass(frozen=True)
class Lit(Expr):
    """A constant."""

    value: Any

    def evaluate(self, env: "PortEnv") -> Any:
        return self.value

    def references(self) -> set[tuple[Space, str]]:
        return set()

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Ref(Expr):
    """A reference to a port value, optionally drilling into record fields.

    ``Ref(Space.INPUT, "mysql", ("host",))`` reads field ``host`` of the
    record held in input port ``mysql``.
    """

    space: Space
    port: str
    path: tuple[str, ...] = ()

    def evaluate(self, env: "PortEnv") -> Any:
        value = env.lookup(self.space, self.port)
        for step in self.path:
            if not isinstance(value, Mapping) or step not in value:
                raise PortError(
                    f"no field {step!r} while evaluating {self}: got {value!r}"
                )
            value = value[step]
        return value

    def references(self) -> set[tuple[Space, str]]:
        return {(self.space, self.port)}

    def __str__(self) -> str:
        suffix = "".join(f".{step}" for step in self.path)
        return f"{self.space.value}.{self.port}{suffix}"


@dataclass(frozen=True)
class RecordExpr(Expr):
    """Build a record value field by field."""

    fields: tuple[tuple[str, Expr], ...]

    @staticmethod
    def of(**fields: Expr) -> "RecordExpr":
        return RecordExpr(tuple(sorted(fields.items())))

    def evaluate(self, env: "PortEnv") -> Any:
        return {name: expr.evaluate(env) for name, expr in self.fields}

    def references(self) -> set[tuple[Space, str]]:
        refs: set[tuple[Space, str]] = set()
        for _, expr in self.fields:
            refs |= expr.references()
        return refs

    def __str__(self) -> str:
        inner = ", ".join(f"{name} = {expr}" for name, expr in self.fields)
        return "{" + inner + "}"


@dataclass(frozen=True)
class ListExpr(Expr):
    """Build a list value element by element."""

    elements: tuple[Expr, ...]

    def evaluate(self, env: "PortEnv") -> Any:
        return [expr.evaluate(env) for expr in self.elements]

    def references(self) -> set[tuple[Space, str]]:
        refs: set[tuple[Space, str]] = set()
        for expr in self.elements:
            refs |= expr.references()
        return refs

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elements) + "]"


@dataclass(frozen=True)
class Format(Expr):
    """String interpolation: ``Format("{h}:{p}", h=..., p=...)``.

    The template uses ``str.format``-style named placeholders; each named
    argument is an expression evaluated first.
    """

    template: str
    args: tuple[tuple[str, Expr], ...]

    @staticmethod
    def of(template: str, **args: Expr) -> "Format":
        return Format(template, tuple(sorted(args.items())))

    def evaluate(self, env: "PortEnv") -> Any:
        values = {name: expr.evaluate(env) for name, expr in self.args}
        try:
            return self.template.format(**values)
        except (KeyError, IndexError) as exc:
            raise PortError(
                f"format template {self.template!r} failed: {exc}"
            ) from exc

    def references(self) -> set[tuple[Space, str]]:
        refs: set[tuple[Space, str]] = set()
        for _, expr in self.args:
            refs |= expr.references()
        return refs

    def __str__(self) -> str:
        inner = ", ".join(f"{name} = {expr}" for name, expr in self.args)
        return f"format({self.template!r}, {inner})"


class PortEnv:
    """The evaluation environment: an instance's input and config values."""

    def __init__(
        self,
        inputs: Mapping[str, Any] | None = None,
        configs: Mapping[str, Any] | None = None,
    ) -> None:
        self._inputs = dict(inputs or {})
        self._configs = dict(configs or {})

    def lookup(self, space: Space, port: str) -> Any:
        table = self._inputs if space == Space.INPUT else self._configs
        if port not in table:
            raise PortError(f"unbound {space.value} port {port!r}")
        return table[port]

    def bind(self, space: Space, port: str, value: Any) -> None:
        table = self._inputs if space == Space.INPUT else self._configs
        table[port] = value


def input_ref(port: str, *path: str) -> Ref:
    """Shorthand for a reference to an input port."""
    return Ref(Space.INPUT, port, tuple(path))


def config_ref(port: str, *path: str) -> Ref:
    """Shorthand for a reference to a config port."""
    return Ref(Space.CONFIG, port, tuple(path))


def is_constant(expr: Expr) -> bool:
    """Whether an expression references no ports (a "default constant")."""
    return not expr.references()
