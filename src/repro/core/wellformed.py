"""Well-formedness of a set of resource types (S3.1).

A finite set of resource types is well-formed iff:

1. every key appearing in a dependency is mapped to a registered type
   (no pending dependencies);
2. a resource with no inside dependency (a machine) has no input ports;
3. each input port is mapped exactly once across the port mappings of the
   inside, environment, and peer dependencies, and each output port is
   assigned a value;
4. the ordering ``<=i  U  <=e  U  <=p`` on resource types is acyclic.

We additionally check the S3.4 static-binding refinements and that every
port reference inside a value expression resolves to a declared port of a
compatible space.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.errors import UnknownKeyError, WellFormednessError
from repro.core.keys import ResourceKey
from repro.core.ports import (
    Binding,
    ListType,
    PortType,
    RecordType,
    ScalarKind,
    ScalarType,
)
from repro.core.registry import ResourceTypeRegistry
from repro.core.resource_type import Dependency, ResourceType
from repro.core.values import (
    Expr,
    Format,
    Lit,
    ListExpr,
    RecordExpr,
    Ref,
    Space,
)


def check_registry(registry: ResourceTypeRegistry) -> list[str]:
    """Return a list of well-formedness problems (empty when well-formed)."""
    problems: list[str] = []
    reverse_targets = collect_reverse_targets(registry)
    for key in registry.keys():
        resource_type = registry.effective(key)
        problems.extend(_check_type(registry, resource_type, reverse_targets))
    problems.extend(_check_acyclic(registry))
    return problems


def collect_reverse_targets(
    registry: ResourceTypeRegistry,
) -> set[tuple[ResourceKey, str]]:
    """All (provider key, input port) pairs some dependent reverse-maps.

    Such inputs are filled *against* the dependency direction by a static
    output of a dependent (S3.4), so condition 3's "mapped exactly once"
    does not count them against the provider's own dependencies.

    Memoized per registry version: propagation and spec typechecking
    consult this set on every configuration query.
    """
    return registry.derived("reverse_targets", _collect_reverse_targets)


def _collect_reverse_targets(
    registry: ResourceTypeRegistry,
) -> set[tuple[ResourceKey, str]]:
    targets: set[tuple[ResourceKey, str]] = set()
    for key in registry.keys():
        resource_type = registry.effective(key)
        for dep in resource_type.dependencies():
            for alt in dep.alternatives:
                for _, input_name in alt.reverse_mapping.entries:
                    targets.add((alt.key, input_name))
    return targets


def is_reverse_target(
    registry: ResourceTypeRegistry,
    reverse_targets: set[tuple[ResourceKey, str]],
    key: ResourceKey,
    input_name: str,
) -> bool:
    """Whether input ``input_name`` of ``key`` may be reverse-filled."""
    return any(
        name == input_name and registry.is_subtype(key, target_key)
        for target_key, name in reverse_targets
    )


def assert_well_formed(registry: ResourceTypeRegistry) -> None:
    """Raise :class:`WellFormednessError` listing every problem found.

    The verdict is memoized on the registry itself: once a registry
    version has verified clean, subsequent calls return immediately
    until the registry is mutated (callers that construct many engines
    or sessions against one registry pay the full check once).
    """
    if registry.verified_well_formed:
        return
    problems = check_registry(registry)
    if problems:
        raise WellFormednessError(
            "resource-type set is not well-formed:\n  "
            + "\n  ".join(problems)
        )
    registry.mark_well_formed()


def _check_type(
    registry: ResourceTypeRegistry,
    resource_type: ResourceType,
    reverse_targets: set[tuple[ResourceKey, str]],
) -> list[str]:
    problems: list[str] = []
    key = resource_type.key

    # Condition 1: dependency keys are registered.
    for dep in resource_type.dependencies():
        for alt in dep.alternatives:
            if not registry.has(alt.key):
                problems.append(f"{key}: {dep.kind.value} dependency on "
                                f"unregistered type {alt.key}")

    # Condition 2: machines have no input ports.
    if resource_type.is_machine() and resource_type.input_ports:
        problems.append(
            f"{key}: has no inside dependency (a machine) but declares "
            f"input ports {sorted(p.name for p in resource_type.input_ports)}"
        )

    # Condition 3: each input port mapped exactly once.
    mapped: dict[str, int] = {p.name: 0 for p in resource_type.input_ports}
    for dep in resource_type.dependencies():
        for name in dep.mapped_inputs():
            if name not in mapped:
                problems.append(
                    f"{key}: {dep.kind.value} dependency maps unknown "
                    f"input port {name!r}"
                )
            else:
                mapped[name] += 1
    if not resource_type.abstract:
        for name, count in sorted(mapped.items()):
            if count == 0:
                if is_reverse_target(registry, reverse_targets, key, name):
                    continue  # filled by a dependent's static output
                problems.append(f"{key}: input port {name!r} is never mapped")
            elif count > 1:
                problems.append(
                    f"{key}: input port {name!r} is mapped {count} times"
                )
    else:
        for name, count in sorted(mapped.items()):
            if count > 1:
                problems.append(
                    f"{key}: input port {name!r} is mapped {count} times"
                )

    # Port-mapping targets must exist with compatible types.
    for dep in resource_type.dependencies():
        problems.extend(_check_mapping_targets(registry, resource_type, dep))

    # Expression-level type checking of defaults and output values.
    problems.extend(_check_expr_types(resource_type))

    # Expression references must resolve to declared ports.
    input_names = {p.name for p in resource_type.input_ports}
    config_names = {p.name for p in resource_type.config_ports}
    for config_port in resource_type.config_ports:
        for space, port in config_port.default.references():
            if space != Space.INPUT or port not in input_names:
                problems.append(
                    f"{key}: config port {config_port.name!r} default "
                    f"references unknown {space.value} port {port!r}"
                )
    static_configs = {
        p.name for p in resource_type.config_ports
        if p.port.binding == Binding.STATIC
    }
    for output_port in resource_type.output_ports:
        for space, port in output_port.value.references():
            known = input_names if space == Space.INPUT else config_names
            if port not in known:
                problems.append(
                    f"{key}: output port {output_port.name!r} references "
                    f"unknown {space.value} port {port!r}"
                )
        if output_port.port.binding == Binding.STATIC:
            # Static outputs: constant or function of static config ports.
            for space, port in output_port.value.references():
                if space != Space.CONFIG or port not in static_configs:
                    problems.append(
                        f"{key}: static output port {output_port.name!r} may "
                        f"only read static config ports, reads "
                        f"{space.value}.{port}"
                    )
    return problems


def check_expr_against_type(
    expr: Expr,
    expected: PortType,
    resource_type: ResourceType,
    where: str,
) -> list[str]:
    """Statically type-check a port-value expression (S3.1 refinement).

    Goes beyond the paper's formal model: constants must inhabit the
    declared type, record expressions must match the record's fields,
    and ``Ref`` field paths are resolved through the *declared* types of
    the referenced ports -- so a typo like ``input.db.prot`` is a
    well-formedness error, not a deployment-time crash.
    """
    key = resource_type.key
    problems: list[str] = []

    if isinstance(expr, Lit):
        if expr.value is None:
            return []  # "unset": must be overridden before deployment
        if not expected.accepts(expr.value):
            problems.append(
                f"{key}: {where}: constant {expr.value!r} does not "
                f"inhabit declared type {expected}"
            )
        return problems

    if isinstance(expr, Ref):
        resolved = _resolve_ref_type(expr, resource_type)
        if isinstance(resolved, str):  # an error message
            problems.append(f"{key}: {where}: {resolved}")
            return problems
        if resolved is not None and not resolved.is_subtype_of(expected):
            problems.append(
                f"{key}: {where}: {expr} has type {resolved}, which does "
                f"not fit declared type {expected}"
            )
        return problems

    if isinstance(expr, RecordExpr):
        if not isinstance(expected, RecordType):
            problems.append(
                f"{key}: {where}: record expression where {expected} "
                "is declared"
            )
            return problems
        declared = expected.field_map()
        given = dict(expr.fields)
        missing = sorted(set(declared) - set(given))
        extra = sorted(set(given) - set(declared))
        if missing:
            problems.append(
                f"{key}: {where}: record expression misses fields "
                f"{missing}"
            )
        if extra:
            problems.append(
                f"{key}: {where}: record expression has undeclared "
                f"fields {extra}"
            )
        for name in sorted(set(declared) & set(given)):
            problems.extend(
                check_expr_against_type(
                    given[name], declared[name], resource_type,
                    f"{where}.{name}",
                )
            )
        return problems

    if isinstance(expr, ListExpr):
        if not isinstance(expected, ListType):
            problems.append(
                f"{key}: {where}: list expression where {expected} is "
                "declared"
            )
            return problems
        for index, element in enumerate(expr.elements):
            problems.extend(
                check_expr_against_type(
                    element, expected.element, resource_type,
                    f"{where}[{index}]",
                )
            )
        return problems

    if isinstance(expr, Format):
        if not expected.accepts(""):
            problems.append(
                f"{key}: {where}: format(...) produces a string, which "
                f"does not inhabit declared type {expected}"
            )
        return problems

    return problems  # unknown expression node: nothing to check


def _resolve_ref_type(ref: Ref, resource_type: ResourceType):
    """The declared type a ``Ref`` resolves to, an error string, or
    ``None`` when the referenced port is undeclared (reported by the
    reference checks elsewhere)."""
    if ref.space == Space.INPUT:
        if not resource_type.has_input_port(ref.port):
            return None
        port_type: PortType = resource_type.input_port(ref.port).type
    else:
        try:
            port_type = resource_type.config_port(ref.port).port.type
        except Exception:
            return None
    for step in ref.path:
        if not isinstance(port_type, RecordType):
            return (
                f"{ref} drills into field {step!r} of non-record type "
                f"{port_type}"
            )
        fields = port_type.field_map()
        if step not in fields:
            return (
                f"{ref} references unknown field {step!r} (record has "
                f"{sorted(fields)})"
            )
        port_type = fields[step]
    return port_type


def _check_expr_types(resource_type: ResourceType) -> list[str]:
    problems: list[str] = []
    # Condition 3's second half: "each output port is assigned a value".
    # Abstract types may defer to subtypes; concrete ones may not.
    if not resource_type.abstract:
        for output_port in resource_type.output_ports:
            value = output_port.value
            if isinstance(value, Lit) and value.value is None:
                problems.append(
                    f"{resource_type.key}: output port "
                    f"{output_port.name!r} is never assigned a value"
                )
    for config_port in resource_type.config_ports:
        problems.extend(
            check_expr_against_type(
                config_port.default,
                config_port.port.type,
                resource_type,
                f"config port {config_port.name!r} default",
            )
        )
    for output_port in resource_type.output_ports:
        problems.extend(
            check_expr_against_type(
                output_port.value,
                output_port.port.type,
                resource_type,
                f"output port {output_port.name!r}",
            )
        )
    return problems


def _check_mapping_targets(
    registry: ResourceTypeRegistry,
    resource_type: ResourceType,
    dep: Dependency,
) -> list[str]:
    problems: list[str] = []
    key = resource_type.key
    for alt in dep.alternatives:
        if not registry.has(alt.key):
            continue  # already reported by condition 1
        provider = registry.effective(alt.key)
        provider_outputs = {p.name: p for p in provider.output_ports}
        for output_name, input_name in alt.port_mapping.entries:
            if output_name not in provider_outputs:
                problems.append(
                    f"{key}: mapping reads output {output_name!r} which "
                    f"{alt.key} does not declare"
                )
                continue
            if not resource_type.has_input_port(input_name):
                continue  # reported by condition 3
            output_type = provider_outputs[output_name].port.type
            input_type = resource_type.input_port(input_name).type
            if not output_type.is_subtype_of(input_type):
                problems.append(
                    f"{key}: output {alt.key}.{output_name} of type "
                    f"{output_type} does not fit input {input_name!r} of "
                    f"type {input_type}"
                )
        # Reverse mappings (static ports): my static outputs feed the
        # provider's inputs.
        my_outputs = {p.name: p for p in resource_type.output_ports}
        for output_name, input_name in alt.reverse_mapping.entries:
            mine = my_outputs.get(output_name)
            if mine is None:
                problems.append(
                    f"{key}: reverse mapping reads unknown output "
                    f"{output_name!r}"
                )
                continue
            if mine.port.binding != Binding.STATIC:
                problems.append(
                    f"{key}: reverse mapping requires static output port, "
                    f"but {output_name!r} is dynamic"
                )
            if not provider.has_input_port(input_name):
                problems.append(
                    f"{key}: reverse mapping targets unknown input "
                    f"{input_name!r} of {alt.key}"
                )
    return problems


def _check_acyclic(registry: ResourceTypeRegistry) -> list[str]:
    """Condition 4: the union of the three orderings is acyclic."""
    edges: dict[ResourceKey, set[ResourceKey]] = {}
    for key in registry.keys():
        resource_type = registry.effective(key)
        targets: set[ResourceKey] = set()
        for dep in resource_type.dependencies():
            targets.update(
                alt.key for alt in dep.alternatives if registry.has(alt.key)
            )
        edges[key] = targets

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {key: WHITE for key in edges}
    problems: list[str] = []

    def visit(node: ResourceKey, stack: list[ResourceKey]) -> None:
        color[node] = GRAY
        stack.append(node)
        for target in sorted(edges.get(node, ())):
            if color.get(target, BLACK) == GRAY:
                start = stack.index(target)
                cycle = " -> ".join(str(k) for k in stack[start:] + [target])
                problems.append(f"dependency cycle among resource types: {cycle}")
            elif color.get(target) == WHITE:
                visit(target, stack)
        stack.pop()
        color[node] = BLACK

    for key in sorted(edges):
        if color[key] == WHITE:
            visit(key, [])
    return problems
