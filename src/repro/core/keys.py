"""Resource keys and versions.

A resource type is identified by a globally unique *key*, "usually
consisting of a name and a version" (S3.1).  Versions are dotted integer
tuples ("6.0.18").  The DSL's version-range sugar ("OpenMRS depends on
versions of Tomcat before 6.0.29") lowers to disjunctions over the
concrete versions that satisfy a :class:`VersionRange`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, Optional

from repro.core.errors import ResourceModelError

_VERSION_RE = re.compile(r"^\d+(\.\d+)*$")


@total_ordering
@dataclass(frozen=True)
class Version:
    """A dotted integer version such as ``6.0.18``.

    Comparison is lexicographic on the integer components, with missing
    trailing components treated as zero (so ``6.0`` == ``6.0.0`` and
    ``6.0`` < ``6.0.18``).
    """

    parts: tuple[int, ...]

    @staticmethod
    def parse(text: str) -> "Version":
        text = text.strip()
        if not _VERSION_RE.match(text):
            raise ResourceModelError(f"invalid version string: {text!r}")
        return Version(tuple(int(p) for p in text.split(".")))

    @staticmethod
    def is_valid(text: str) -> bool:
        return bool(_VERSION_RE.match(text.strip()))

    def _padded(self, width: int) -> tuple[int, ...]:
        return self.parts + (0,) * (width - len(self.parts))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        width = max(len(self.parts), len(other.parts))
        return self._padded(width) == other._padded(width)

    def __lt__(self, other: "Version") -> bool:
        width = max(len(self.parts), len(other.parts))
        return self._padded(width) < other._padded(width)

    def __hash__(self) -> int:
        # Strip trailing zeros so equal versions hash equally.
        parts = self.parts
        while parts and parts[-1] == 0:
            parts = parts[:-1]
        return hash(parts)

    def is_unversioned(self) -> bool:
        return not self.parts

    def __str__(self) -> str:
        return ".".join(str(p) for p in self.parts)

    def __repr__(self) -> str:
        return f"Version({self})"


#: The version of "unversioned" keys (abstract types such as ``Server``).
UNVERSIONED = Version(())


@dataclass(frozen=True)
class VersionRange:
    """A half-open or closed interval of versions.

    ``lo``/``hi`` of ``None`` mean unbounded on that side.  Bounds are
    inclusive when the matching ``*_inclusive`` flag is set.  The default
    matches the common "at least 5.5 but before 6.0.29" idiom:
    lo-inclusive, hi-exclusive.
    """

    lo: Optional[Version] = None
    hi: Optional[Version] = None
    lo_inclusive: bool = True
    hi_inclusive: bool = False

    def contains(self, version: Version) -> bool:
        if self.lo is not None:
            if self.lo_inclusive:
                if version < self.lo:
                    return False
            elif version <= self.lo:
                return False
        if self.hi is not None:
            if self.hi_inclusive:
                if version > self.hi:
                    return False
            elif version >= self.hi:
                return False
        return True

    def __str__(self) -> str:
        lo = "[" if self.lo_inclusive else "("
        hi = "]" if self.hi_inclusive else ")"
        lo_s = str(self.lo) if self.lo is not None else "*"
        hi_s = str(self.hi) if self.hi is not None else "*"
        return f"{lo}{lo_s}, {hi_s}{hi}"


@dataclass(frozen=True, order=True)
class ResourceKey:
    """The globally unique identifier of a resource type: name + version."""

    name: str
    version: Version

    @staticmethod
    def parse(text: str) -> "ResourceKey":
        """Parse a display form such as ``"Tomcat 6.0.18"``.

        The version is the final whitespace-separated token if it looks
        like a dotted number; everything before it is the name (names may
        contain spaces).  Text without a version token parses as an
        *unversioned* key -- used for abstract types such as ``Server``.
        """
        text = text.strip()
        if not text:
            raise ResourceModelError("empty resource key")
        name, _, version = text.rpartition(" ")
        if name and Version.is_valid(version):
            return ResourceKey(name.strip(), Version.parse(version))
        return ResourceKey(text, UNVERSIONED)

    def display(self) -> str:
        if self.version.is_unversioned():
            return self.name
        return f"{self.name} {self.version}"

    def __str__(self) -> str:
        return self.display()


def select_versions(
    versions: Iterable[Version], version_range: VersionRange
) -> list[Version]:
    """Return the sorted subset of ``versions`` inside ``version_range``."""
    return sorted(v for v in set(versions) if version_range.contains(v))
