"""Ports and port types.

Configuration data for a component is described in *ports* (S3.1).  A port
has a name and a type over an "(unspecified) set of base types"; we make
that set concrete with a small lattice of scalar types plus record types
(the paper's "structure with named fields" sugar, S3.4).

The subtyping relation ``<=`` on port types feeds the Figure 4 rules:
input ports are contravariant and config/output ports covariant in the
base-type relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from repro.core.errors import PortError, PortTypeError


class ScalarKind(Enum):
    """The scalar base types over which ports are defined."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    PATH = "path"
    HOSTNAME = "hostname"
    TCP_PORT = "tcp_port"
    PASSWORD = "password"


# Direct subtype edges of the scalar lattice: child -> parent.
_SCALAR_PARENT: dict[ScalarKind, ScalarKind] = {
    ScalarKind.PATH: ScalarKind.STRING,
    ScalarKind.HOSTNAME: ScalarKind.STRING,
    ScalarKind.PASSWORD: ScalarKind.STRING,
    ScalarKind.TCP_PORT: ScalarKind.INT,
    ScalarKind.INT: ScalarKind.FLOAT,
}


class PortType:
    """Abstract base of port types.  Use :class:`ScalarType`,
    :class:`RecordType`, or :class:`ListType`."""

    def is_subtype_of(self, other: "PortType") -> bool:
        raise NotImplementedError

    def accepts(self, value: Any) -> bool:
        """Whether a concrete Python value inhabits this type."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScalarType(PortType):
    kind: ScalarKind

    def is_subtype_of(self, other: PortType) -> bool:
        if not isinstance(other, ScalarType):
            return False
        kind: ScalarKind | None = self.kind
        while kind is not None:
            if kind == other.kind:
                return True
            kind = _SCALAR_PARENT.get(kind)
        return False

    def accepts(self, value: Any) -> bool:
        kind = self.kind
        if kind == ScalarKind.BOOL:
            return isinstance(value, bool)
        if kind in (ScalarKind.INT, ScalarKind.TCP_PORT):
            if not isinstance(value, int) or isinstance(value, bool):
                return False
            if kind == ScalarKind.TCP_PORT:
                return 0 <= value <= 65535
            return True
        if kind == ScalarKind.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        # All the string-like kinds accept str.
        return isinstance(value, str)

    def __str__(self) -> str:
        return self.kind.value


@dataclass(frozen=True)
class RecordType(PortType):
    """A structure with named, typed fields (S3.4 sugar)."""

    fields: tuple[tuple[str, PortType], ...]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.fields]
        if len(names) != len(set(names)):
            raise PortError(f"duplicate field names in record type: {names}")

    @staticmethod
    def of(**fields: PortType) -> "RecordType":
        return RecordType(tuple(sorted(fields.items())))

    def field_map(self) -> dict[str, PortType]:
        return dict(self.fields)

    def is_subtype_of(self, other: PortType) -> bool:
        # Width and depth subtyping: a record is a subtype if it has at
        # least the fields of the supertype, each at a subtype.
        if not isinstance(other, RecordType):
            return False
        mine = self.field_map()
        for name, their_type in other.fields:
            my_type = mine.get(name)
            if my_type is None or not my_type.is_subtype_of(their_type):
                return False
        return True

    def accepts(self, value: Any) -> bool:
        if not isinstance(value, Mapping):
            return False
        mine = self.field_map()
        if set(value.keys()) != set(mine.keys()):
            return False
        return all(mine[name].accepts(value[name]) for name in mine)

    def __str__(self) -> str:
        inner = ", ".join(f"{name}: {t}" for name, t in self.fields)
        return "{" + inner + "}"


@dataclass(frozen=True)
class ListType(PortType):
    """A homogeneous list of elements (used e.g. for pip package lists)."""

    element: PortType

    def is_subtype_of(self, other: PortType) -> bool:
        return isinstance(other, ListType) and self.element.is_subtype_of(
            other.element
        )

    def accepts(self, value: Any) -> bool:
        return isinstance(value, (list, tuple)) and all(
            self.element.accepts(item) for item in value
        )

    def __str__(self) -> str:
        return f"list[{self.element}]"


# Convenient singletons for the scalar types.
STRING = ScalarType(ScalarKind.STRING)
INT = ScalarType(ScalarKind.INT)
FLOAT = ScalarType(ScalarKind.FLOAT)
BOOL = ScalarType(ScalarKind.BOOL)
PATH = ScalarType(ScalarKind.PATH)
HOSTNAME = ScalarType(ScalarKind.HOSTNAME)
TCP_PORT = ScalarType(ScalarKind.TCP_PORT)
PASSWORD = ScalarType(ScalarKind.PASSWORD)

_SCALARS_BY_NAME = {
    "string": STRING,
    "int": INT,
    "float": FLOAT,
    "bool": BOOL,
    "path": PATH,
    "hostname": HOSTNAME,
    "tcp_port": TCP_PORT,
    "password": PASSWORD,
}


def scalar_by_name(name: str) -> ScalarType:
    """Look up a scalar type by its DSL name (e.g. ``"tcp_port"``)."""
    try:
        return _SCALARS_BY_NAME[name]
    except KeyError:
        raise PortError(f"unknown scalar type: {name!r}") from None


class Binding(Enum):
    """Static vs. dynamic port binding (S3.4 extension).

    A *static* port is assigned a value at instantiation time; a *dynamic*
    port at installation time.  Only config and output ports may be static.
    """

    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class Port:
    """A named, typed port.  ``binding`` defaults to dynamic."""

    name: str
    type: PortType
    binding: Binding = Binding.DYNAMIC

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise PortError(f"invalid port name: {self.name!r}")

    def check_value(self, value: Any) -> None:
        """Raise :class:`PortTypeError` unless ``value`` inhabits the type."""
        if not self.type.accepts(value):
            raise PortTypeError(
                f"value {value!r} does not inhabit type {self.type} "
                f"of port {self.name!r}"
            )


def record_value(**fields: Any) -> dict[str, Any]:
    """Build a record value for a :class:`RecordType` port."""
    return dict(fields)


def neutral_value(port_type: PortType) -> Any:
    """A type-appropriate "absent" value.

    Used for reverse-mapped input ports (S3.4) when no downstream
    dependent pushes a value: string-likes get ``""``, numbers ``0``,
    bools ``False``, lists ``[]``, records a neutral value per field.
    """
    if isinstance(port_type, ScalarType):
        if port_type.kind == ScalarKind.BOOL:
            return False
        if port_type.kind in (ScalarKind.INT, ScalarKind.TCP_PORT):
            return 0
        if port_type.kind == ScalarKind.FLOAT:
            return 0.0
        return ""
    if isinstance(port_type, ListType):
        return []
    if isinstance(port_type, RecordType):
        return {name: neutral_value(t) for name, t in port_type.fields}
    raise PortError(f"no neutral value for type {port_type}")
