"""Resource instances and installation specifications (S3.3).

A *resource instance* is created from a resource type "by assigning
concrete values to its configuration ports and by replacing dependency
constraints with directional links to other resource instances"; each
instance carries a globally unique identifier.

A *full installation specification* lists every instance required to
deploy an application, with every dependency linked and every port
valued.  A *partial installation specification* (S4) lists only the main
components -- resource instances "for which only a subset of dependencies
are instantiated" -- plus optional explicit config-port values; the
configuration engine expands it to a full specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Optional

from repro.core.errors import CycleError, SpecError
from repro.core.keys import ResourceKey


@dataclass(frozen=True)
class InstanceRef:
    """A directional link to another resource instance."""

    id: str
    key: ResourceKey

    def __str__(self) -> str:
        return f"{self.id} ({self.key})"


@dataclass(frozen=True)
class DependencyLink:
    """A resolved dependency: which instance satisfies it, and the port
    mapping in force (output port of the target -> input port of the
    owner)."""

    kind: str  # "inside" | "environment" | "peer"
    target: InstanceRef
    port_mapping: tuple[tuple[str, str], ...] = ()
    reverse_mapping: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ResourceInstance:
    """A fully resolved resource instance.

    ``config``/``inputs``/``outputs`` hold the concrete port values.
    ``inside`` is the container link (None only for machines).
    """

    id: str
    key: ResourceKey
    config: dict[str, Any] = field(default_factory=dict)
    inputs: dict[str, Any] = field(default_factory=dict)
    outputs: dict[str, Any] = field(default_factory=dict)
    inside: Optional[DependencyLink] = None
    environment: tuple[DependencyLink, ...] = ()
    peers: tuple[DependencyLink, ...] = ()

    def ref(self) -> InstanceRef:
        return InstanceRef(self.id, self.key)

    def links(self) -> tuple[DependencyLink, ...]:
        """All outgoing dependency links (inside, environment, peer)."""
        links: tuple[DependencyLink, ...] = ()
        if self.inside is not None:
            links += (self.inside,)
        return links + self.environment + self.peers

    def upstream_ids(self) -> list[str]:
        """Ids of instances this one directly depends on."""
        return [link.target.id for link in self.links()]

    def is_machine(self) -> bool:
        return self.inside is None

    def machine_id(self, spec: "InstallSpec") -> str:
        """Follow inside links to the physical machine (S3.1)."""
        instance: ResourceInstance = self
        seen: set[str] = set()
        while instance.inside is not None:
            if instance.id in seen:
                raise CycleError(f"inside cycle at instance {instance.id}")
            seen.add(instance.id)
            instance = spec[instance.inside.target.id]
        return instance.id


@dataclass(frozen=True)
class PartialInstance:
    """One entry of a partial installation specification (Figure 2).

    ``inside_id`` names the container instance (the paper assumes partial
    specs resolve inside dependencies -- machines are not auto-created
    unless provisioning fills them in).  ``config`` holds explicit values
    for individual configuration ports; unassigned ones take the defaults
    defined in the resource type.
    """

    id: str
    key: ResourceKey
    inside_id: Optional[str] = None
    config: dict[str, Any] = field(default_factory=dict)


class PartialInstallSpec:
    """An ordered collection of :class:`PartialInstance` entries."""

    def __init__(self, instances: Iterable[PartialInstance] = ()) -> None:
        self._instances: dict[str, PartialInstance] = {}
        for instance in instances:
            self.add(instance)

    def add(self, instance: PartialInstance) -> None:
        if instance.id in self._instances:
            raise SpecError(f"duplicate instance id in partial spec: {instance.id}")
        self._instances[instance.id] = instance

    def __iter__(self) -> Iterator[PartialInstance]:
        return iter(self._instances.values())

    def __len__(self) -> int:
        return len(self._instances)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._instances

    def __getitem__(self, instance_id: str) -> PartialInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise SpecError(f"no instance {instance_id!r} in partial spec") from None

    def ids(self) -> list[str]:
        return list(self._instances)


class InstallSpec:
    """A full installation specification: every instance, fully linked.

    Provides identity lookup, machine grouping, and the dependency order
    used by the deployment engine.
    """

    def __init__(self, instances: Iterable[ResourceInstance] = ()) -> None:
        self._instances: dict[str, ResourceInstance] = {}
        # Lazy derived views: the reverse-dependency index and the
        # topological order.  Guard checking asks for downstream
        # neighbours once per transition, so without the index a
        # fleet-sized drive is O(N^2) in full-spec scans.
        self._downstream: Optional[dict[str, list[str]]] = None
        self._topo_order: Optional[list[ResourceInstance]] = None
        for instance in instances:
            self.add(instance)

    def _invalidate(self) -> None:
        self._downstream = None
        self._topo_order = None

    def add(self, instance: ResourceInstance) -> None:
        if instance.id in self._instances:
            raise SpecError(f"duplicate instance id: {instance.id}")
        self._instances[instance.id] = instance
        self._invalidate()

    def replace_instance(self, instance: ResourceInstance) -> None:
        if instance.id not in self._instances:
            raise SpecError(f"no instance {instance.id!r} to replace")
        self._instances[instance.id] = instance
        self._invalidate()

    def __iter__(self) -> Iterator[ResourceInstance]:
        return iter(self._instances.values())

    def __len__(self) -> int:
        return len(self._instances)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._instances

    def __getitem__(self, instance_id: str) -> ResourceInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise SpecError(f"no instance {instance_id!r} in install spec") from None

    def ids(self) -> list[str]:
        return list(self._instances)

    def machines(self) -> list[ResourceInstance]:
        """All machine instances (no inside link)."""
        return [inst for inst in self if inst.is_machine()]

    def instances_on_machine(self, machine_id: str) -> list[ResourceInstance]:
        """Every instance whose physical context is ``machine_id``."""
        return [
            inst for inst in self if inst.machine_id(self) == machine_id
        ]

    def downstream_ids(self, instance_id: str) -> list[str]:
        """Ids of instances that directly depend on ``instance_id``."""
        if self._downstream is None:
            index: dict[str, list[str]] = {}
            for inst in self:
                for upstream in inst.upstream_ids():
                    index.setdefault(upstream, []).append(inst.id)
            self._downstream = index
        return list(self._downstream.get(instance_id, ()))

    def topological_order(self) -> list[ResourceInstance]:
        """Instances ordered so dependencies precede dependents.

        This is the install order of S5.2; raises :class:`CycleError` if
        the links are cyclic (a full spec must be a DAG).  The order is
        computed once and cached until the spec is mutated; callers get
        a fresh list, so reordering/slicing it cannot corrupt the cache.
        """
        if self._topo_order is not None:
            return list(self._topo_order)
        in_degree: dict[str, int] = {iid: 0 for iid in self._instances}
        dependents: dict[str, list[str]] = {iid: [] for iid in self._instances}
        for instance in self:
            for upstream in instance.upstream_ids():
                if upstream not in self._instances:
                    raise SpecError(
                        f"instance {instance.id} links to missing instance "
                        f"{upstream}"
                    )
                in_degree[instance.id] += 1
                dependents[upstream].append(instance.id)

        ready = sorted(iid for iid, deg in in_degree.items() if deg == 0)
        order: list[ResourceInstance] = []
        while ready:
            current = ready.pop(0)
            order.append(self._instances[current])
            for dependent in sorted(dependents[current]):
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
            ready.sort()
        if len(order) != len(self._instances):
            remaining = sorted(set(self._instances) - {i.id for i in order})
            raise CycleError(
                f"dependency cycle among instances: {', '.join(remaining)}"
            )
        self._topo_order = order
        return list(order)

    def machine_order(self) -> list[str]:
        """Machines partially ordered by cross-machine dependencies (S5.2).

        Machine ``m1`` precedes ``m2`` when some instance on ``m2`` depends
        on some instance on ``m1``.  The paper's implementation assumes
        this relation is acyclic; we raise :class:`CycleError` otherwise.
        """
        machine_of = {inst.id: inst.machine_id(self) for inst in self}
        machines = sorted({m for m in machine_of.values()})
        edges: dict[str, set[str]] = {m: set() for m in machines}
        for instance in self:
            m2 = machine_of[instance.id]
            for upstream in instance.upstream_ids():
                m1 = machine_of[upstream]
                if m1 != m2:
                    edges[m2].add(m1)  # m2 depends on m1

        order: list[str] = []
        state: dict[str, int] = {}

        def visit(machine: str) -> None:
            if state.get(machine) == 2:
                return
            if state.get(machine) == 1:
                raise CycleError(
                    f"cross-machine dependency cycle involving {machine}"
                )
            state[machine] = 1
            for prerequisite in sorted(edges[machine]):
                visit(prerequisite)
            state[machine] = 2
            order.append(machine)

        for machine in machines:
            visit(machine)
        return order
