"""The resource-type registry.

Holds the "fixed, well-formed set of resource types R in the system"
(S4).  The registry:

* indexes types by key and by name (all versions of a package);
* maintains the subclass tree declared by ``extends``;
* *flattens* inheritance -- "fields from a super-resource type are
  implicitly replicated in the sub-resource type, or overridden" (S3.2) --
  producing the effective type used everywhere downstream;
* verifies every declared ``extends`` edge against the structural
  Figure 4 rules;
* computes the *concrete frontier* of an abstract type, used by the
  hypergraph generator to lower abstract dependencies to disjunctions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core.errors import (
    AbstractFrontierError,
    DuplicateKeyError,
    SubtypingError,
    UnknownKeyError,
)
from repro.core.keys import ResourceKey, Version, VersionRange
from repro.core.resource_type import Dependency, ResourceType
from repro.core import subtyping


class ResourceTypeRegistry:
    """A mutable collection of resource types with derived indexes."""

    def __init__(self, types: Iterable[ResourceType] = ()) -> None:
        self._raw: dict[ResourceKey, ResourceType] = {}
        self._effective: dict[ResourceKey, ResourceType] = {}
        self._children: dict[ResourceKey, list[ResourceKey]] = {}
        #: Monotonic mutation counter; bumped on every registration so
        #: downstream caches (well-formedness verdicts, configuration
        #: sessions) can detect staleness cheaply.
        self._version = 0
        #: The :attr:`version` at which well-formedness was last verified,
        #: or None if never verified (or mutated since).
        self._wellformed_version: Optional[int] = None
        #: Named derived indexes memoized against :attr:`version`.
        self._derived: dict[str, tuple[int, object]] = {}
        for resource_type in types:
            self.register(resource_type)

    # -- Registration ---------------------------------------------------

    def register(self, resource_type: ResourceType) -> None:
        key = resource_type.key
        if key in self._raw:
            raise DuplicateKeyError(f"resource type already registered: {key}")
        if resource_type.extends is not None:
            if resource_type.extends not in self._raw:
                raise UnknownKeyError(
                    f"{key} extends unknown type {resource_type.extends}"
                )
        self._version += 1
        self._raw[key] = resource_type
        self._effective.pop(key, None)
        if resource_type.extends is not None:
            self._children.setdefault(resource_type.extends, []).append(key)
            self._check_extends(key)

    def register_all(self, types: Iterable[ResourceType]) -> None:
        for resource_type in types:
            self.register(resource_type)

    def _check_extends(self, key: ResourceKey) -> None:
        """Verify the flattened sub against the flattened super (Figure 4)."""
        raw = self._raw[key]
        assert raw.extends is not None
        sub = self.effective(key)
        sup = self.effective(raw.extends)
        if not subtyping.structural_subtype(self, sub, sup):
            raise SubtypingError(
                f"{key} does not structurally subtype {raw.extends} "
                "(Figure 4 rules)"
            )

    # -- Mutation tracking ----------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter: increases whenever a type is registered."""
        return self._version

    @property
    def verified_well_formed(self) -> bool:
        """True when well-formedness was verified and nothing changed since."""
        return self._wellformed_version == self._version

    def mark_well_formed(self) -> None:
        """Record that the current contents passed well-formedness checks.

        Called by :func:`repro.core.wellformed.assert_well_formed`; any
        subsequent :meth:`register` invalidates the verdict.
        """
        self._wellformed_version = self._version

    def derived(self, name: str, builder) -> object:
        """Memoize ``builder(self)`` under ``name`` until the next mutation.

        Used for derived indexes that are expensive to recompute on every
        query (e.g. the reverse-mapping target set consulted by value
        propagation); the cached value is dropped automatically when the
        registry version changes.
        """
        hit = self._derived.get(name)
        if hit is not None and hit[0] == self._version:
            return hit[1]
        value = builder(self)
        self._derived[name] = (self._version, value)
        return value

    # -- Lookup ---------------------------------------------------------

    def has(self, key: ResourceKey) -> bool:
        return key in self._raw

    def raw(self, key: ResourceKey) -> ResourceType:
        """The type exactly as registered (un-flattened)."""
        try:
            return self._raw[key]
        except KeyError:
            raise UnknownKeyError(f"unknown resource type: {key}") from None

    def effective(self, key: ResourceKey) -> ResourceType:
        """The type with inherited fields flattened in."""
        cached = self._effective.get(key)
        if cached is not None:
            return cached
        raw = self.raw(key)
        if raw.extends is None:
            flattened = raw
        else:
            flattened = _merge(self.effective(raw.extends), raw)
        self._effective[key] = flattened
        return flattened

    def keys(self) -> list[ResourceKey]:
        return sorted(self._raw)

    def __iter__(self) -> Iterator[ResourceType]:
        for key in self.keys():
            yield self._raw[key]

    def __len__(self) -> int:
        return len(self._raw)

    def versions_of(self, name: str) -> list[Version]:
        """All registered versions of a package name."""
        return sorted(k.version for k in self._raw if k.name == name)

    def keys_in_range(self, name: str, version_range: VersionRange) -> list[ResourceKey]:
        """Concrete keys of ``name`` whose version lies in the range."""
        return [
            ResourceKey(name, v)
            for v in self.versions_of(name)
            if version_range.contains(v)
        ]

    # -- Subtype tree ---------------------------------------------------

    def children(self, key: ResourceKey) -> list[ResourceKey]:
        """Direct declared subtypes of ``key``."""
        return list(self._children.get(key, ()))

    def is_subtype(self, sub: ResourceKey, sup: ResourceKey) -> bool:
        """Reflexive-transitive ``extends`` relation.

        Memoized per registry version: graph generation asks this for
        every (candidate key, dependency key) pair, which at fleet scale
        is the same few hundred pairs over and over.
        """
        verdicts = self.derived("subtype-verdicts", lambda _registry: {})
        pair = (sub, sup)
        hit = verdicts.get(pair)
        if hit is None:
            hit = subtyping.nominal_subtype(self, sub, sup)
            verdicts[pair] = hit
        return hit

    def concrete_frontier(self, key: ResourceKey) -> list[ResourceKey]:
        """The frontier F of concrete subtypes of ``key`` (S4).

        Walk the subclass tree from ``key``, stopping at the first concrete
        type on each path.  Raises :class:`AbstractFrontierError` when some
        path ends in an abstract leaf (the paper: "we stop with an error").
        """
        resource_type = self.effective(key)
        if not resource_type.abstract:
            return [key]
        frontier: list[ResourceKey] = []
        for child in self.children(key):
            if self.effective(child).abstract:
                frontier.extend(self.concrete_frontier(child))
            else:
                frontier.append(child)
        if not frontier:
            raise AbstractFrontierError(
                f"abstract resource {key} has no concrete subtypes"
            )
        return sorted(frontier)

    def machines(self) -> list[ResourceKey]:
        """All concrete machine types (no inside dependency)."""
        return [
            key
            for key in self.keys()
            if self.effective(key).is_machine() and not self.effective(key).abstract
        ]


def _merge(sup: ResourceType, sub: ResourceType) -> ResourceType:
    """Flatten ``sub`` over its flattened super ``sup`` (S3.2 semantics).

    Ports with the same name override; others are appended.  The inside
    dependency is overridden if the sub declares one.  Environment and
    peer dependencies override a super dependency when their mapped
    input-port sets intersect (a refinement), and are appended otherwise.
    """
    inputs = {p.name: p for p in sup.input_ports}
    inputs.update({p.name: p for p in sub.input_ports})
    configs = {p.name: p for p in sup.config_ports}
    configs.update({p.name: p for p in sub.config_ports})
    outputs = {p.name: p for p in sup.output_ports}
    outputs.update({p.name: p for p in sub.output_ports})

    inside = sub.inside if sub.inside is not None else sup.inside

    environment = _merge_dependencies(sup.environment, sub.environment)
    peers = _merge_dependencies(sup.peers, sub.peers)

    driver = sub.driver_name if sub.driver_name != "null" else sup.driver_name

    return ResourceType(
        key=sub.key,
        abstract=sub.abstract,
        extends=sub.extends,
        input_ports=tuple(inputs.values()),
        config_ports=tuple(configs.values()),
        output_ports=tuple(outputs.values()),
        inside=inside,
        environment=environment,
        peers=peers,
        driver_name=driver,
    )


def _merge_dependencies(
    sup_deps: tuple[Dependency, ...], sub_deps: tuple[Dependency, ...]
) -> tuple[Dependency, ...]:
    merged: list[Dependency] = []
    overridden: set[int] = set()
    for sup_dep in sup_deps:
        sup_inputs = sup_dep.mapped_inputs()
        replacement: Optional[Dependency] = None
        for index, sub_dep in enumerate(sub_deps):
            if sup_inputs and sub_dep.mapped_inputs() & sup_inputs:
                replacement = sub_dep
                overridden.add(index)
                break
        merged.append(replacement if replacement is not None else sup_dep)
    for index, sub_dep in enumerate(sub_deps):
        if index not in overridden:
            merged.append(sub_dep)
    return tuple(merged)
