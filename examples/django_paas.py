#!/usr/bin/env python
"""The Django platform-as-a-service scenario (S6.2).

Package a third-party Django application (Buzzfire, from Table 1) with
the application packager, deploy it to a cloud-provisioned server with
the stack choices of the paper (Gunicorn + MySQL + Redis), inject
monitoring, and demonstrate the watchdog restarting a crashed service.

Run:  python examples/django_paas.py
"""

from __future__ import annotations

from repro import (
    ConfigurationEngine,
    DeploymentEngine,
    PartialInstallSpec,
    PartialInstance,
    ProcessMonitor,
    add_monitoring,
    as_key,
    provision_partial_spec,
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.django import SimDatabase, package_application, table1_apps


def main() -> None:
    registry = standard_registry()
    infrastructure = standard_infrastructure()  # includes a cloud provider

    # -- 1. Package the application (validates + generates a type) -------
    buzzfire = next(app for app in table1_apps() if app.name == "Buzzfire")
    app_key = package_application(buzzfire, registry, infrastructure)
    print(f"packaged {buzzfire.name!r} -> resource type {app_key}")
    print(f"  pip dependencies: {[p for p, _ in buzzfire.pip_packages]}")
    print(f"  uses redis: {buzzfire.uses_redis}")
    print()

    # -- 2. Partial spec with NO hostname: the cloud provides one --------
    partial = PartialInstallSpec(
        [
            PartialInstance("node", as_key("Ubuntu-Linux 10.04")),
            PartialInstance("app", app_key, inside_id="node"),
            PartialInstance("web", as_key("Gunicorn 0.13"),
                            inside_id="node"),
            PartialInstance("db", as_key("MySQL 5.1"), inside_id="node"),
        ]
    )
    partial = provision_partial_spec(registry, partial, infrastructure)
    hostname = partial["node"].config["hostname"]
    print(f"cloud provisioned server: {hostname}")

    # -- 3. Monitoring plugin injects monit per host ----------------------
    partial = add_monitoring(registry, partial)

    # -- 4. Configure + deploy --------------------------------------------
    result = ConfigurationEngine(registry).configure(partial)
    print(f"full specification: {len(result.spec)} instances "
          f"(user wrote {4})")
    deploy = DeploymentEngine(registry, infrastructure, standard_drivers())
    system = deploy.deploy(result.spec)
    print(f"deployed: {system.is_deployed()}")
    print(f"app URL : {result.spec['app'].outputs['url']}")

    machine = infrastructure.network.machine(hostname)
    database = SimDatabase(machine.fs, "/var/lib/mysql/app.json")
    print(f"migrated tables: {database.tables()}")
    print()

    # -- 5. The watchdog in action ----------------------------------------
    monitor = ProcessMonitor(system)
    monitor.generate_config()
    print("monit watches:", ", ".join(monitor.watched_services()))
    redis_id = next(i.id for i in result.spec if i.key.name == "Redis")
    process = system.driver(redis_id).process
    print(f"killing {process.name} (pid {process.pid})...")
    process.fail()
    events = monitor.poll()
    for event in events:
        print(f"  monitor restarted {event.process_name} "
              f"at t={event.timestamp:.0f}s")
    print("redis reachable again:",
          infrastructure.network.can_connect(hostname, 6379))


if __name__ == "__main__":
    main()
