#!/usr/bin/env python
"""A tour of the resource definition language (S3).

Define a small application stack in DSL text -- abstract types,
subtyping, version ranges, disjunctions, static reverse mappings --
lower it, check well-formedness, and configure a deployment from a
Figure 2 style JSON partial specification.

Run:  python examples/dsl_tour.py
"""

from __future__ import annotations

from repro import (
    ConfigurationEngine,
    ConfigurationSession,
    ResourceTypeRegistry,
    check_registry,
    format_module,
    load_resources,
    partial_from_json,
)

STACK_DSL = '''
# Machines ------------------------------------------------------------
abstract resource "Server" driver "machine" {
  config hostname: hostname = "localhost"
  config os_user_name: string = "root"
  output host: { hostname: hostname, os_user_name: string } =
    { hostname = config.hostname, os_user_name = config.os_user_name }
}

resource "Shop-Linux" 1.0 extends "Server" {}

# A queue with two interchangeable versions ---------------------------
abstract resource "Queue" driver "service" {
  inside "Server" { host -> host }
  input host: { hostname: hostname, os_user_name: string }
  config port: tcp_port = 5672
  output queue: { host: hostname, port: tcp_port }
}

resource "FastQueue" 1.2 extends "Queue" {
  output queue: { host: hostname, port: tcp_port } =
    { host = input.host.hostname, port = config.port }
}

resource "FastQueue" 2.0 extends "Queue" {
  output queue: { host: hostname, port: tcp_port } =
    { host = input.host.hostname, port = config.port }
}

# The application: version-range dependency + format expression --------
resource "OrderService" 1.0 driver "service" {
  inside "Server" { host -> host }
  peer "FastQueue" [1.0, 2.0) { queue -> queue }   # pins the 1.x line
  input host: { hostname: hostname, os_user_name: string }
  input queue: { host: hostname, port: tcp_port }
  config port: tcp_port = 9000
  output url: string =
    format("http://{h}:{p}/orders", h = input.host.hostname,
           p = config.port)
}
'''

PARTIAL_JSON = """
[
  { "id": "box", "key": "Shop-Linux 1.0",
    "config_port": { "hostname": "shop-1" } },
  { "id": "orders", "key": "OrderService 1.0", "inside": { "id": "box" } }
]
"""


def main() -> None:
    registry = ResourceTypeRegistry()
    types = load_resources(STACK_DSL, registry)
    print(f"parsed and lowered {len(types)} resource types")
    problems = check_registry(registry)
    print(f"well-formedness problems: {problems or 'none'}")

    # The version range [1.0, 2.0) lowered to a concrete disjunction:
    orders = registry.effective(types[-1].key)
    print("OrderService peer targets:",
          [str(alt.key) for alt in orders.peers[0].alternatives])

    partial = partial_from_json(PARTIAL_JSON)
    result = ConfigurationEngine(registry).configure(partial)
    print("\ndeployed instances:", sorted(result.deployed_ids))
    print("order service URL :", result.spec["orders"].outputs["url"])
    queue_id = next(
        i.id for i in result.spec if i.key.name == "FastQueue"
    )
    print("queue chosen      :", result.spec[queue_id].key)

    # Repeated queries: a session caches the hypergraph, the encoding,
    # and a persistent incremental SAT solver per spec structure.
    session = ConfigurationSession(registry)
    for label in ("cold", "warm"):
        timed = session.configure(partial_from_json(PARTIAL_JSON))
        print(f"session ({label})    : {timed.timings.total_ms:6.2f} ms  "
              f"graph_hit={timed.cache.graph_hit} "
              f"solver_reused={timed.cache.solver_reused}")
    assert sorted(timed.deployed_ids) == sorted(result.deployed_ids)

    print("\n--- the library, pretty-printed back to DSL ---")
    print(format_module(types[:2]))


if __name__ == "__main__":
    main()
