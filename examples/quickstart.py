#!/usr/bin/env python
"""Quickstart: the paper's S2 walkthrough, end to end.

Write the Figure 2 partial installation specification (three instances:
a Mac OSX server, Tomcat inside it, OpenMRS inside Tomcat), let the
configuration engine expand it -- resolving Java, MySQL, and every port
value via Boolean constraint solving -- and deploy the result onto a
simulated machine.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ConfigurationEngine,
    DeploymentEngine,
    PartialInstallSpec,
    PartialInstance,
    as_key,
    full_to_json,
    line_count,
    partial_to_json,
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)


def main() -> None:
    registry = standard_registry()
    infrastructure = standard_infrastructure()

    # -- 1. The partial installation specification (Figure 2) ------------
    partial = PartialInstallSpec(
        [
            PartialInstance(
                "server",
                as_key("Mac-OSX 10.6"),
                config={"hostname": "demotest", "os_user_name": "root"},
            ),
            PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                            inside_id="server"),
            PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                            inside_id="tomcat"),
        ]
    )
    print("=== Partial installation specification (user input) ===")
    print(partial_to_json(partial))

    # -- 2. Configuration: partial -> full via the constraint engine -----
    engine = ConfigurationEngine(registry)
    result = engine.configure(partial)
    print("=== Configuration engine ===")
    print(f"hypergraph nodes : {len(result.graph)}")
    print(f"SAT variables    : {result.constraint_stats.variables}")
    print(f"SAT clauses      : {result.constraint_stats.clauses}")
    print(f"deployed         : {sorted(result.deployed_ids)}")
    partial_lines = line_count(partial_to_json(partial))
    full_lines = line_count(full_to_json(result.spec))
    print(f"spec compaction  : {partial_lines} -> {full_lines} lines "
          f"({full_lines / partial_lines:.1f}x)")
    print()

    # -- 3. Deployment: drive every resource driver to `active` ----------
    deploy = DeploymentEngine(registry, infrastructure, standard_drivers())
    system = deploy.deploy(result.spec)
    print("=== Deployment ===")
    for instance in result.spec.topological_order():
        print(f"  {instance.id:<10} {str(instance.key):<22} "
              f"{system.state_of(instance.id)}")
    print(f"OpenMRS URL      : {result.spec['openmrs'].outputs['url']}")

    machine = infrastructure.network.machine("demotest")
    print("running processes:")
    for process in machine.running_processes():
        print(f"  {process}")
    print(f"simulated install time: {infrastructure.clock.now / 60:.1f} min")

    # -- 4. Management: dependency-ordered shutdown -----------------------
    deploy.shutdown(system)
    print("after shutdown   :", sorted(set(system.states().values())))


if __name__ == "__main__":
    main()
