#!/usr/bin/env python
"""Application upgrades with rollback (S6.2, the FA case study).

Deploy FA v1, load production data, upgrade to v2 (a South-style schema
migration adds a column while preserving rows), then attempt an upgrade
to a broken v2.1 whose migration fails -- Engage rolls the system back
to the running v2 with the data intact.

Run:  python examples/upgrade_rollback.py
"""

from __future__ import annotations

from repro import (
    ConfigurationEngine,
    DeploymentEngine,
    PartialInstallSpec,
    PartialInstance,
    UpgradeEngine,
    as_key,
    provision_partial_spec,
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.django import (
    SimDatabase,
    fa_broken_snapshot,
    fa_snapshots,
    package_application,
)


def main() -> None:
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    drivers = standard_drivers()

    fa_v1, fa_v2 = fa_snapshots()
    fa_bad = fa_broken_snapshot()
    key_v1 = package_application(fa_v1, registry, infrastructure)
    key_v2 = package_application(fa_v2, registry, infrastructure)
    key_bad = package_application(fa_bad, registry, infrastructure)

    config_engine = ConfigurationEngine(registry, verify_registry=False)
    deploy_engine = DeploymentEngine(registry, infrastructure, drivers)
    upgrader = UpgradeEngine(config_engine, deploy_engine)

    def partial_for(key):
        return provision_partial_spec(
            registry,
            PartialInstallSpec(
                [
                    PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                    config={"hostname": "prod"}),
                    PartialInstance("app", key, inside_id="node"),
                    PartialInstance("web", as_key("Gunicorn 0.13"),
                                    inside_id="node"),
                    PartialInstance("db", as_key("MySQL 5.1"),
                                    inside_id="node"),
                ]
            ),
            infrastructure,
        )

    # -- v1 in production ---------------------------------------------------
    system = deploy_engine.deploy(config_engine.configure(
        partial_for(key_v1)).spec)
    machine = infrastructure.network.machine("prod")
    database = SimDatabase(machine.fs, "/var/lib/mysql/app.json")
    for row_id, name in enumerate(["Ada", "Grace", "Barbara"], start=1):
        database.insert("applicants",
                        {"id": row_id, "name": name, "area": "CS"})
    print(f"FA v1 deployed; schema={database.columns('applicants')}, "
          f"{database.count('applicants')} rows")

    # -- Upgrade to v2 ---------------------------------------------------------
    result = upgrader.upgrade(system, partial_for(key_v2))
    print(f"\nupgrade to v2: succeeded={result.succeeded}")
    print(f"  diff: upgraded={result.diff.upgraded} "
          f"added={result.diff.added}")
    print(f"  schema now: {database.columns('applicants')}")
    print(f"  rows preserved: {database.count('applicants')} "
          f"(decision backfilled: "
          f"{database.rows('applicants')[0]['decision']!r})")

    # -- Broken upgrade to v2.1 ---------------------------------------------------
    result2 = upgrader.upgrade(result.system, partial_for(key_bad))
    print(f"\nupgrade to broken v2.1: succeeded={result2.succeeded}, "
          f"rolled_back={result2.rolled_back}")
    print(f"  error: {result2.error}")
    print(f"  running version after rollback: "
          f"{result2.system.spec['app'].key}")
    print(f"  rows intact: {database.count('applicants')}")
    print(f"  system active: {result2.system.is_deployed()}")


if __name__ == "__main__":
    main()
