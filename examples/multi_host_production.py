#!/usr/bin/env python
"""Multi-host production deployment (S5.2 + the WebApp case study).

The production topology of the paper's hosting company: the WebApp
application, Gunicorn, RabbitMQ, Redis, memcached, and Celery on a web
node, with MySQL on a dedicated database node.  The master coordinator
splits the full specification into per-node specs, orders the machines
by cross-machine dependencies (db before web), and runs a slave
deployment per node.

Run:  python examples/multi_host_production.py
"""

from __future__ import annotations

from repro import (
    ConfigurationEngine,
    MasterCoordinator,
    PartialInstallSpec,
    PartialInstance,
    as_key,
    provision_partial_spec,
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.django import package_application, table1_apps
from repro.runtime import machine_waves, split_spec


def main() -> None:
    registry = standard_registry()
    infrastructure = standard_infrastructure()

    webapp = next(app for app in table1_apps() if app.name == "WebApp")
    app_key = package_application(webapp, registry, infrastructure)

    partial = PartialInstallSpec(
        [
            PartialInstance("webnode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "www1"}),
            PartialInstance("dbnode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "db1"}),
            PartialInstance("app", app_key, inside_id="webnode"),
            PartialInstance("web", as_key("Gunicorn 0.13"),
                            inside_id="webnode"),
            PartialInstance("db", as_key("MySQL 5.1"), inside_id="dbnode"),
        ]
    )
    partial = provision_partial_spec(registry, partial, infrastructure)
    result = ConfigurationEngine(registry).configure(partial)
    spec = result.spec
    print(f"user wrote {len(partial)} instances; "
          f"engine produced {len(spec)}")

    # -- The coordination plan --------------------------------------------
    print("\nper-node specifications:")
    for machine_id, sub_spec in sorted(split_spec(spec).items()):
        print(f"  {machine_id}: {sorted(sub_spec.ids())}")
    print("machine waves (parallel groups):", machine_waves(spec))

    # -- Deploy -------------------------------------------------------------
    coordinator = MasterCoordinator(
        registry, infrastructure, standard_drivers()
    )
    deployment = coordinator.deploy(spec)
    print(f"\ndeployed: {deployment.is_deployed()}")
    report = deployment.report
    for machine_id, seconds in sorted(report.per_machine_seconds.items()):
        print(f"  {machine_id}: {seconds / 60:.1f} simulated minutes")
    print(f"sequential total : {report.sequential_seconds / 60:.1f} min")
    print(f"parallel makespan: {report.parallel_makespan_seconds / 60:.1f} min")

    # The app on www1 reaches MySQL on db1 across the simulated network.
    print("\ncross-machine connectivity:")
    print("  www1 -> db1:3306 :",
          infrastructure.network.can_connect("db1", 3306))
    print("  app URL          :", spec["app"].outputs["url"])
    print("  db host seen by app:",
          spec["app"].inputs["database"]["host"])

    coordinator.shutdown(deployment)
    print("\nafter shutdown:", sorted(set(deployment.states().values())))


if __name__ == "__main__":
    main()
