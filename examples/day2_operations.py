#!/usr/bin/env python
"""Day-2 operations: diagnosis and low-downtime upgrades.

Two extensions built on the paper's machinery:

1. *Unsatisfiability explanation* -- when a partial specification cannot
   be extended, Engage names a minimal set of pinned instances that
   cannot coexist instead of a bare "unsatisfiable".
2. *In-place upgrades* -- the optimisation the paper leaves as future
   work: only changed instances and their transitive dependents stop;
   everything else keeps serving.

Run:  python examples/day2_operations.py
"""

from __future__ import annotations

from repro import (
    ConfigurationEngine,
    DeploymentEngine,
    PartialInstallSpec,
    PartialInstance,
    UpgradeEngine,
    as_key,
    provision_partial_spec,
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.config import explain_message
from repro.django import fa_snapshots, package_application


def main() -> None:
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    drivers = standard_drivers()

    # ------------------------------------------------------------------
    # 1. Conflict diagnosis: pin BOTH Java runtimes and ask why not.
    # ------------------------------------------------------------------
    conflicted = PartialInstallSpec(
        [
            PartialInstance("server", as_key("Mac-OSX 10.6"),
                            config={"hostname": "h"}),
            PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                            inside_id="server"),
            PartialInstance("jdk_pin", as_key("JDK 1.6"),
                            inside_id="server"),
            PartialInstance("jre_pin", as_key("JRE 1.6"),
                            inside_id="server"),
        ]
    )
    print("=== explain an unsatisfiable specification ===")
    print(explain_message(registry, conflicted))
    print()

    # ------------------------------------------------------------------
    # 2. In-place upgrade of the FA application.
    # ------------------------------------------------------------------
    fa_v1, fa_v2 = fa_snapshots()
    key_v1 = package_application(fa_v1, registry, infrastructure)
    key_v2 = package_application(fa_v2, registry, infrastructure)
    config_engine = ConfigurationEngine(registry, verify_registry=False)
    deploy_engine = DeploymentEngine(registry, infrastructure, drivers)
    upgrader = UpgradeEngine(config_engine, deploy_engine)

    def partial_for(key):
        return provision_partial_spec(
            registry,
            PartialInstallSpec(
                [
                    PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                    config={"hostname": "prod"}),
                    PartialInstance("app", key, inside_id="node"),
                    PartialInstance("web", as_key("Gunicorn 0.13"),
                                    inside_id="node"),
                    PartialInstance("db", as_key("MySQL 5.1"),
                                    inside_id="node"),
                ]
            ),
            infrastructure,
        )

    system = deploy_engine.deploy(
        config_engine.configure(partial_for(key_v1)).spec
    )
    mysql_pid = system.driver("db").process.pid
    web_pid = system.driver("web").process.pid
    print("=== in-place upgrade ===")
    print(f"FA v1 live; mysqld pid={mysql_pid}, gunicorn pid={web_pid}")

    before = infrastructure.clock.now
    result = upgrader.upgrade(
        system, partial_for(key_v2), strategy="in_place"
    )
    in_place_seconds = infrastructure.clock.now - before
    print(f"upgrade to v2: succeeded={result.succeeded} in "
          f"{in_place_seconds:.0f} simulated seconds")
    print(f"  changed   : {result.diff.upgraded + result.diff.added}")
    print(f"  unchanged : mysqld pid still {result.system.driver('db').process.pid}, "
          f"gunicorn pid still {result.system.driver('web').process.pid}")

    # The worst-case baseline, for contrast.
    registry2 = standard_registry()
    infra2 = standard_infrastructure()
    k1 = package_application(fa_v1, registry2, infra2)
    k2 = package_application(fa_v2, registry2, infra2)
    ce2 = ConfigurationEngine(registry2, verify_registry=False)
    de2 = DeploymentEngine(registry2, infra2, standard_drivers())

    def pf2(key):
        return provision_partial_spec(
            registry2,
            PartialInstallSpec(
                [
                    PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                    config={"hostname": "prod"}),
                    PartialInstance("app", key, inside_id="node"),
                    PartialInstance("web", as_key("Gunicorn 0.13"),
                                    inside_id="node"),
                    PartialInstance("db", as_key("MySQL 5.1"),
                                    inside_id="node"),
                ]
            ),
            infra2,
        )

    system2 = de2.deploy(ce2.configure(pf2(k1)).spec)
    before = infra2.clock.now
    UpgradeEngine(ce2, de2).upgrade(system2, pf2(k2), strategy="replace")
    replace_seconds = infra2.clock.now - before
    print(f"\nworst-case replace strategy: {replace_seconds:.0f} simulated "
          f"seconds ({replace_seconds / in_place_seconds:.0f}x slower)")


if __name__ == "__main__":
    main()
