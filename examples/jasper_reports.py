#!/usr/bin/env python
"""The JasperReports Server case study (S6.1).

The paper compared a manual install (a 77-page guide; five hours the
first try) with the automated Engage install.  This example runs the
automated install twice -- once cold from the simulated internet, once
from a warm local file cache -- reproducing the paper's 17-minute vs
5-minute measurement shape, and prints the resources Engage resolved
automatically.

Run:  python examples/jasper_reports.py
"""

from __future__ import annotations

from repro import (
    ConfigurationEngine,
    DeploymentEngine,
    PartialInstallSpec,
    PartialInstance,
    as_key,
    full_to_json,
    line_count,
    partial_to_json,
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)

JASPER_STACK = (
    ("jdk", "1.6"),
    ("jre", "1.6"),
    ("tomcat", "6.0.18"),
    ("mysql", "5.1"),
    ("jasperreports-server", "4.2"),
    ("mysql-jdbc-connector", "5.1.17"),
)


def jasper_partial() -> PartialInstallSpec:
    return PartialInstallSpec(
        [
            PartialInstance("server", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "reports"}),
            PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                            inside_id="server"),
            PartialInstance("jasper", as_key("JasperReports-Server 4.2"),
                            inside_id="tomcat"),
        ]
    )


def install(use_cache: bool) -> float:
    registry = standard_registry()
    infrastructure = standard_infrastructure(use_cache=use_cache)
    if use_cache:
        for name, version in JASPER_STACK:
            infrastructure.downloads.prefetch(name, version)
    partial = jasper_partial()
    result = ConfigurationEngine(registry).configure(partial)
    if use_cache:  # report structure once
        partial_lines = line_count(partial_to_json(partial))
        full_lines = line_count(full_to_json(result.spec))
        print("resources the user named :",
              sorted(i.id for i in partial))
        print("resources Engage resolved:",
              sorted(set(result.spec.ids()) - {i.id for i in partial}))
        print(f"spec compaction          : {partial_lines} -> "
              f"{full_lines} lines")
        print()
    system = DeploymentEngine(
        registry, infrastructure, standard_drivers()
    ).deploy(result.spec)
    assert system.is_deployed()
    url = result.spec["jasper"].outputs["url"]
    print(f"  deployed {url} in "
          f"{infrastructure.clock.now / 60:.1f} simulated minutes "
          f"({'local cache' if use_cache else 'internet'})")
    return infrastructure.clock.now


def main() -> None:
    print("=== JasperReports Server install (S6.1) ===\n")
    cached = install(use_cache=True)
    internet = install(use_cache=False)
    print(f"\npaper:    17 min internet vs 5 min cached (3.4x)")
    print(f"measured: {internet / 60:.1f} min vs {cached / 60:.1f} min "
          f"({internet / cached:.1f}x)")


if __name__ == "__main__":
    main()
