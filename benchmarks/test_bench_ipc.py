"""IPC cost of parallel configuration: compact protocol vs the old one.

The parallel-configuration wire protocol ships each component's solver
model as a signed-literal array plus only the fields the parent cannot
reconstruct, and shrinks warm-path replies for unchanged models to a
bare header (see ``repro.config.parallel``).  The protocol it replaced
shipped, per component and per call, the full decoded ``named_model``
dict, the ``deployed`` frozenset, the choices map, and (cold) the whole
propagated instance tuple.

This benchmark runs the ~4096-node fleet through a warm worker pool,
measures the actual reply bytes (every frame is counted at the pipe),
reconstructs byte-for-byte what the legacy protocol would have pickled
for the *same* outcomes, and asserts the warm session path moves at
least ``WIRE_REDUCTION_FLOOR``x fewer reply bytes.  Results land in the
``wire`` section of ``benchmarks/BENCH_fleet.json``.
"""

from __future__ import annotations

import pickle

from repro.config import generate_graph, propagate
from repro.config.parallel import WorkerPool, decode_component_model
from repro.config.partition import partition_graph
from repro.library.fleet import FleetTopology, fleet_partial

from test_bench_fleet import _update_results

#: (replicas, machines) -> roughly 4096 graph nodes, the largest serial
#: benchmark size.
IPC_SIZE = (768, 256)

IPC_WORKERS = 4

#: Floor asserted on the warm path: legacy reply bytes / measured.
WIRE_REDUCTION_FLOOR = 5.0


def _legacy_reply_bytes(outcome, named, deployed, choices, instances):
    """Pickled size of the reply the pre-compact protocol shipped.

    Cold calls carried the decoded model, deployed set, choices, and
    the full propagated instance tuple; warm calls whose outcome
    repeated skipped the instances but still shipped the decoded model,
    deployed set, and choices.
    """
    payload = (
        outcome.index, outcome.status, named, deployed, choices, instances,
        outcome.constraint_stats, outcome.solver_stats,
        outcome.encode_ms, outcome.solve_ms,
        outcome.encoded, outcome.solver_reused, None,
    )
    return len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))


def test_warm_reply_bytes_reduction(registry):
    replicas, machines = IPC_SIZE
    partial = fleet_partial(
        FleetTopology(replicas=replicas, machines=machines)
    )
    graph = generate_graph(registry, partial)
    components = partition_graph(graph).components
    nodes = len(graph)
    assert nodes >= 4096

    pool = WorkerPool(registry, workers=IPC_WORKERS)
    try:
        cold = pool.run_components(
            components, fingerprint="bench-ipc", keep=True
        )
        cold_wire = pool.last_wire
        # Parent-side decode/propagate (what the engine/session do as
        # replies stream in), kept to price the legacy payloads.
        decoded = {}
        legacy_cold = 0
        for component, outcome in zip(components, cold):
            named, deployed, choices = decode_component_model(
                component, outcome.model
            )
            spec = propagate(registry, component.graph, deployed, choices)
            decoded[outcome.index] = (
                named, frozenset(deployed), choices, tuple(spec)
            )
            legacy_cold += _legacy_reply_bytes(
                outcome, named, frozenset(deployed), choices, tuple(spec)
            )

        warm = pool.run_components(
            components, fingerprint="bench-ipc", keep=True
        )
        warm_wire = pool.last_wire
        legacy_warm = 0
        for outcome in warm:
            assert outcome.model_unchanged, (
                "warm replies must be headers on an unchanged fleet"
            )
            named, deployed, choices, _instances = decoded[outcome.index]
            legacy_warm += _legacy_reply_bytes(
                outcome, named, deployed, choices, None
            )
    finally:
        pool.close()

    assert cold_wire.reply_frames == len(components)
    assert warm_wire.reply_frames == len(components)

    cold_reduction = legacy_cold / cold_wire.reply_bytes
    warm_reduction = legacy_warm / warm_wire.reply_bytes
    _update_results("wire", {
        "replicas": replicas,
        "machines": machines,
        "nodes": nodes,
        "components": len(components),
        "workers": IPC_WORKERS,
        "reduction_floor_warm": WIRE_REDUCTION_FLOOR,
        "cold": {
            "reply_bytes": cold_wire.reply_bytes,
            "legacy_reply_bytes": legacy_cold,
            "reduction": round(cold_reduction, 1),
            "request_bytes": cold_wire.request_bytes,
            "largest_reply_bytes": cold_wire.largest_reply_bytes,
        },
        "warm": {
            "reply_bytes": warm_wire.reply_bytes,
            "legacy_reply_bytes": legacy_warm,
            "reduction": round(warm_reduction, 1),
            "request_bytes": warm_wire.request_bytes,
            "largest_reply_bytes": warm_wire.largest_reply_bytes,
        },
    })

    assert warm_reduction >= WIRE_REDUCTION_FLOOR, (
        f"warm replies only {warm_reduction:.1f}x smaller than the "
        f"legacy protocol at {nodes} nodes "
        f"({warm_wire.reply_bytes} vs {legacy_warm} bytes; "
        f"floor {WIRE_REDUCTION_FLOOR}x)"
    )
    # The cold path wins too: literal arrays beat decoded dicts +
    # propagated instance tuples by a wide margin.
    assert cold_reduction >= WIRE_REDUCTION_FLOOR
