"""E12 -- solver and encoding ablations (DESIGN.md section 6).

The paper used MiniSat; our substitute is the from-scratch CDCL solver.
These benchmarks measure (a) configuration-engine scaling as the
resource library grows, (b) CDCL vs plain DPLL on the generated
constraint shapes, and (c) the pairwise vs sequential exactly-one
encodings.
"""

from __future__ import annotations

import time

import pytest

from repro.config import (
    ConfigurationEngine,
    generate_constraints,
    generate_graph,
)
from repro.core import (
    PartialInstallSpec,
    PartialInstance,
    ResourceTypeRegistry,
    as_key,
    define,
)
from repro.sat import (
    CdclSolver,
    CnfFormula,
    DpllSolver,
    ExactlyOneEncoding,
    exactly_one,
)


def synthetic_library(layers: int, width: int) -> ResourceTypeRegistry:
    """A layered library: ``layers`` levels, each with ``width`` variants
    under an abstract type; every level's consumer depends on the level
    below through the abstract type (so every dependency is a
    width-way disjunction after frontier lowering)."""
    registry = ResourceTypeRegistry()
    registry.register(define("M", "1", driver="machine").build())
    for layer in range(layers):
        abstract = define(f"L{layer}", abstract=True).inside("M 1")
        if layer > 0:
            abstract.env(f"L{layer - 1}")
        registry.register(abstract.build())
        for variant in range(width):
            registry.register(
                define(f"L{layer}V{variant}", "1",
                       extends=f"L{layer}").build()
            )
    return registry


def top_partial(layers: int) -> PartialInstallSpec:
    return PartialInstallSpec(
        [
            PartialInstance("m", as_key("M 1")),
            PartialInstance(
                "top", as_key(f"L{layers - 1}V0 1"), inside_id="m"
            ),
        ]
    )


@pytest.mark.parametrize("layers", [2, 4, 8])
def test_e12_engine_scaling_with_library_depth(benchmark, layers):
    registry = synthetic_library(layers, width=3)
    engine = ConfigurationEngine(registry, verify_registry=False)
    partial = top_partial(layers)
    result = benchmark(engine.configure, partial)
    benchmark.extra_info.update(
        {
            "layers": layers,
            "types": len(registry),
            "graph_nodes": len(result.graph),
            "variables": result.constraint_stats.variables,
            "clauses": result.constraint_stats.clauses,
        }
    )
    assert "top" in result.spec


@pytest.mark.parametrize("width", [2, 4, 8])
def test_e12_engine_scaling_with_disjunction_width(benchmark, width):
    registry = synthetic_library(layers=4, width=width)
    engine = ConfigurationEngine(registry, verify_registry=False)
    partial = top_partial(4)
    result = benchmark(engine.configure, partial)
    benchmark.extra_info.update(
        {
            "width": width,
            "graph_nodes": len(result.graph),
            "clauses": result.constraint_stats.clauses,
        }
    )
    assert "top" in result.spec


def test_e12_cdcl_vs_dpll_on_engage_constraints(benchmark):
    """Both solvers handle Engage's constraint shapes; CDCL's learned
    clauses are unnecessary on these easy instances, so the comparison
    is about constant factors, not asymptotics."""
    registry = synthetic_library(layers=6, width=4)
    graph = generate_graph(registry, top_partial(6))
    formula, _ = generate_constraints(graph)

    def solve_both():
        cdcl = CdclSolver(formula.copy())
        t0 = time.perf_counter()
        sat_cdcl = cdcl.solve()
        cdcl_seconds = time.perf_counter() - t0

        dpll = DpllSolver(formula.copy())
        t0 = time.perf_counter()
        sat_dpll = dpll.solve()
        dpll_seconds = time.perf_counter() - t0
        assert sat_cdcl == sat_dpll is True
        return cdcl_seconds, dpll_seconds, cdcl.stats

    cdcl_seconds, dpll_seconds, stats = benchmark.pedantic(
        solve_both, rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        {
            "cdcl_seconds": round(cdcl_seconds, 5),
            "dpll_seconds": round(dpll_seconds, 5),
            "cdcl_conflicts": stats.conflicts,
            "cdcl_propagations": stats.propagations,
        }
    )


def test_e12_vsids_ablation(benchmark):
    """VSIDS vs static variable order on a hard unsat instance (PHP):
    both are correct; the decision counts quantify the heuristic's
    value on structured instances."""
    from repro.sat import CnfFormula

    def pigeonhole(holes):
        pigeons = holes + 1
        formula = CnfFormula()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = formula.new_var()
        for p in range(pigeons):
            formula.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    formula.add_clause([-var[(p1, h)], -var[(p2, h)]])
        return formula

    def both():
        formula = pigeonhole(6)
        with_vsids = CdclSolver(formula.copy(), use_vsids=True)
        assert not with_vsids.solve()
        static = CdclSolver(formula.copy(), use_vsids=False)
        assert not static.solve()
        return with_vsids.stats, static.stats

    vsids_stats, static_stats = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "vsids_conflicts": vsids_stats.conflicts,
            "static_conflicts": static_stats.conflicts,
            "vsids_decisions": vsids_stats.decisions,
            "static_decisions": static_stats.decisions,
        }
    )


@pytest.mark.parametrize("n", [10, 40, 120])
def test_e12_exactly_one_encoding_sizes(benchmark, n):
    """Pairwise is O(n^2) clauses; sequential is O(n) with O(n) auxiliary
    variables -- the classic trade-off, measured on our encodings."""

    def build_both():
        pairwise = CnfFormula()
        xs = [pairwise.new_var() for _ in range(n)]
        exactly_one(pairwise, xs, ExactlyOneEncoding.PAIRWISE)

        sequential = CnfFormula()
        ys = [sequential.new_var() for _ in range(n)]
        exactly_one(sequential, ys, ExactlyOneEncoding.SEQUENTIAL)
        return pairwise, sequential

    pairwise, sequential = benchmark(build_both)
    benchmark.extra_info.update(
        {
            "n": n,
            "pairwise_clauses": pairwise.num_clauses,
            "sequential_clauses": sequential.num_clauses,
            "sequential_aux_vars": sequential.num_vars - n,
        }
    )
    assert pairwise.num_clauses == 1 + n * (n - 1) // 2
    assert sequential.num_clauses < pairwise.num_clauses
    # Both remain satisfiable with exactly one true.
    solver = CdclSolver(sequential)
    assert solver.solve()


def test_e12_encodings_agree_on_engage_constraints(benchmark):
    registry = synthetic_library(layers=5, width=5)
    graph = generate_graph(registry, top_partial(5))

    def compare():
        pairwise, stats_p = generate_constraints(
            graph, ExactlyOneEncoding.PAIRWISE
        )
        sequential, stats_s = generate_constraints(
            graph, ExactlyOneEncoding.SEQUENTIAL
        )
        assert CdclSolver(pairwise).solve() == CdclSolver(sequential).solve()
        return stats_p, stats_s

    stats_p, stats_s = benchmark(compare)
    benchmark.extra_info.update(
        {
            "pairwise_clauses": stats_p.clauses,
            "sequential_clauses": stats_s.clauses,
            "pairwise_vars": stats_p.variables,
            "sequential_vars": stats_s.variables,
        }
    )
