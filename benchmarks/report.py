#!/usr/bin/env python
"""Regenerate every table/figure/number of the paper's evaluation.

Prints one section per experiment id (see DESIGN.md section 4) with the
paper's reported value next to the value measured on this reproduction.
The pytest-benchmark suites in this directory assert the same shapes;
this script is the human-readable roll-up recorded in EXPERIMENTS.md.

Run:  python benchmarks/report.py

``python benchmarks/report.py --fleet`` instead renders the serial,
parallel, and wire sections of ``benchmarks/BENCH_fleet.json`` (written
by ``test_bench_fleet.py`` / ``test_bench_ipc.py``) as one comparison
table, so fleet perf regressions are readable straight from CI logs.
``--delta`` does the same for ``benchmarks/BENCH_delta.json`` (written
by ``test_bench_delta.py``): the elasticity ladder and the small-delta
plan-fraction bar against the 1000-replica fleet.
"""

from __future__ import annotations

import argparse
import itertools
import json
import pathlib
import sys
import time

from repro.config import (
    ConfigurationEngine,
    ConfigurationSession,
    generate_constraints,
    generate_graph,
)
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.django import (
    SimDatabase,
    fa_broken_snapshot,
    fa_snapshots,
    package_application,
    table1_apps,
)
from repro.dsl import (
    format_resource_type,
    full_to_json,
    line_count,
    partial_to_json,
)
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import (
    DeploymentEngine,
    MasterCoordinator,
    UpgradeEngine,
    provision_partial_spec,
)
from repro.sat import CdclSolver


def header(experiment: str, title: str) -> None:
    print()
    print(f"--- {experiment}: {title} " + "-" * max(0, 58 - len(title)))


def row(label: str, paper, measured) -> None:
    print(f"  {label:<38} paper: {str(paper):<14} measured: {measured}")


def openmrs_partial() -> PartialInstallSpec:
    return PartialInstallSpec(
        [
            PartialInstance("server", as_key("Mac-OSX 10.6"),
                            config={"hostname": "demotest",
                                    "os_user_name": "root"}),
            PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                            inside_id="server"),
            PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                            inside_id="tomcat"),
        ]
    )


def e1_e2_e3() -> None:
    registry = standard_registry()
    engine = ConfigurationEngine(registry)
    partial = openmrs_partial()
    result = engine.configure(partial)

    header("E1", "OpenMRS spec compaction (S2)")
    partial_lines = line_count(partial_to_json(partial))
    full_lines = line_count(full_to_json(result.spec))
    row("partial spec lines", 22, partial_lines)
    row("full spec lines", 204, full_lines)
    row("compaction ratio", "9.3x", f"{full_lines / partial_lines:.1f}x")

    header("E2", "the S2 Boolean constraints")
    stats = result.constraint_stats
    row("facts from partial spec", 3, stats.facts)
    row("dependency hyperedges", 8, stats.hyperedges)
    model = {k: v for k, v in sorted(result.model.items())}
    row("model (jdk XOR jre)", "jdk=1,jre=0",
        ",".join(f"{k}={int(v)}" for k, v in model.items()
                 if k in ("jdk", "jre")))

    header("E3", "the Figure 5 hypergraph")
    row("instance nodes", 6, len(result.graph))
    row("hyperedges", 8, len(result.graph.edges()))
    row("deployed instances", 5, len(result.spec))


def e4_e5() -> None:
    def deploy_jasper(use_cache: bool) -> tuple[float, dict]:
        registry = standard_registry()
        infrastructure = standard_infrastructure(use_cache=use_cache)
        if use_cache:
            for name, version in (("jdk", "1.6"), ("jre", "1.6"),
                                  ("tomcat", "6.0.18"), ("mysql", "5.1"),
                                  ("jasperreports-server", "4.2"),
                                  ("mysql-jdbc-connector", "5.1.17")):
                infrastructure.downloads.prefetch(name, version)
        partial = PartialInstallSpec(
            [
                PartialInstance("server", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "reports"}),
                PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                                inside_id="server"),
                PartialInstance("jasper",
                                as_key("JasperReports-Server 4.2"),
                                inside_id="tomcat"),
            ]
        )
        engine = ConfigurationEngine(registry)
        result = engine.configure(partial)
        DeploymentEngine(registry, infrastructure,
                         standard_drivers()).deploy(result.spec)
        lines = {
            "partial": line_count(partial_to_json(partial)),
            "full": line_count(full_to_json(result.spec)),
        }
        return infrastructure.clock.now, lines

    internet_seconds, lines = deploy_jasper(use_cache=False)
    cached_seconds, _ = deploy_jasper(use_cache=True)

    header("E4", "JasperReports (S6.1)")
    row("partial spec lines", 26, lines["partial"])
    row("full spec lines", 434, lines["full"])
    row("install (internet)", "17 min",
        f"{internet_seconds / 60:.1f} min (simulated)")
    row("install (local cache)", "5 min",
        f"{cached_seconds / 60:.1f} min (simulated)")
    row("internet/cache ratio", "3.4x",
        f"{internet_seconds / cached_seconds:.1f}x")

    header("E5", "authoring cost (S6.1)")
    import inspect

    from repro.library.java import JasperDriver, JdbcConnectorDriver

    registry = standard_registry()
    jdbc_type = len(format_resource_type(
        registry.raw(as_key("MySQL-JDBC-Connector 5.1.17"))).splitlines())
    jasper_type = len(format_resource_type(
        registry.raw(as_key("JasperReports-Server 4.2"))).splitlines())
    jasper_driver = len(inspect.getsource(JasperDriver).splitlines())
    jdbc_driver_body = len(
        [l for l in inspect.getsource(JdbcConnectorDriver).splitlines()
         if l.strip() and not l.strip().startswith(('#', '"""', "'''"))]
    )
    row("JDBC connector type lines", 40, jdbc_type)
    row("JDBC connector driver lines", 0, f"{jdbc_driver_body} (generic reuse)")
    row("Jasper type lines", 69, jasper_type)
    row("Jasper driver lines", 201, jasper_driver)


def e6() -> None:
    header("E6", "Table 1: eight Django applications")
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    drivers = standard_drivers()
    engine = ConfigurationEngine(registry, verify_registry=False)
    deploy = DeploymentEngine(registry, infrastructure, drivers)
    print(f"  {'app':<18} {'source':<14} {'resources':<10} deployed")
    for index, app in enumerate(table1_apps()):
        key = package_application(app, registry, infrastructure)
        partial = provision_partial_spec(
            registry,
            PartialInstallSpec(
                [
                    PartialInstance(f"node{index}",
                                    as_key("Ubuntu-Linux 10.04"),
                                    config={"hostname": f"host{index}"}),
                    PartialInstance(f"app{index}", key,
                                    inside_id=f"node{index}"),
                ]
            ),
            infrastructure,
        )
        result = engine.configure(partial)
        system = deploy.deploy(result.spec)
        print(f"  {app.name:<18} {app.source:<14} {len(result.spec):<10} "
              f"{system.is_deployed()}")
    row("apps needing app-specific code", 0, 0)


def e7_e10() -> None:
    header("E7", "256 single-node configurations (S6.2)")
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    app = next(a for a in table1_apps() if a.name == "Areneae")
    app_key = package_application(app, registry, infrastructure)
    engine = ConfigurationEngine(registry, verify_registry=False)

    os_choices = ("Mac-OSX 10.5", "Mac-OSX 10.6",
                  "Ubuntu-Linux 10.04", "Ubuntu-Linux 10.10")
    web_choices = ("Gunicorn 0.13", "Apache-HTTPD 2.2")
    db_choices = ("SQLite 3.7", "MySQL 5.1")
    optional = ("Celery 2.4", "Redis 2.4", "Memcached 1.4", "Monit 5.3")
    subsets = list(itertools.chain.from_iterable(
        itertools.combinations(optional, r)
        for r in range(len(optional) + 1)))

    partials = []
    for os_key in os_choices:
        for web in web_choices:
            for db in db_choices:
                for extras in subsets:
                    instances = [
                        PartialInstance("node", as_key(os_key),
                                        config={"hostname": "n1"}),
                        PartialInstance("app", app_key, inside_id="node"),
                        PartialInstance("web", as_key(web),
                                        inside_id="node"),
                        PartialInstance("db", as_key(db), inside_id="node"),
                    ] + [
                        PartialInstance(f"opt{i}", as_key(e),
                                        inside_id="node")
                        for i, e in enumerate(extras)
                    ]
                    partials.append(PartialInstallSpec(instances))

    started = time.perf_counter()
    solved = 0
    for partial in partials:
        engine.configure(partial)
        solved += 1
    elapsed = time.perf_counter() - started
    row("configurations solved", 256, solved)
    row("sweep wall-clock", "-", f"{elapsed:.1f}s")

    session = ConfigurationSession(registry, verify_registry=False)
    started = time.perf_counter()
    for partial in partials:
        session.configure(partial)
    prime_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    for partial in partials:
        session.configure(partial)
    warm_elapsed = time.perf_counter() - started
    row("session sweep (cold caches)", "-", f"{prime_elapsed:.1f}s")
    row("session sweep (warm caches)", "-", f"{warm_elapsed:.2f}s")
    row("warm speedup over per-call", "-",
        f"{elapsed / warm_elapsed:.1f}x")
    row("graph-cache hit rate", "-",
        f"{session.stats.hit_rate:.0%}")

    header("E10", "resource census (S6.2)")
    registry2 = standard_registry()
    infrastructure2 = standard_infrastructure()
    builtin = len(registry2)
    for app in table1_apps():
        package_application(app, registry2, infrastructure2)
    row("library resources", 37, builtin)
    row("with generated app types", "-", len(registry2))


def e8() -> None:
    header("E8", "WebApp production deployment (S6.2)")
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    webapp = next(a for a in table1_apps() if a.name == "WebApp")
    app_key = package_application(webapp, registry, infrastructure)
    partial = provision_partial_spec(
        registry,
        PartialInstallSpec(
            [
                PartialInstance("webnode", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "www1"}),
                PartialInstance("dbnode", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "db1"}),
                PartialInstance("app", app_key, inside_id="webnode"),
                PartialInstance("web", as_key("Gunicorn 0.13"),
                                inside_id="webnode"),
                PartialInstance("db", as_key("MySQL 5.1"),
                                inside_id="dbnode"),
                PartialInstance("queue", as_key("RabbitMQ 2.7"),
                                inside_id="webnode"),
                PartialInstance("mon", as_key("Monit 5.3"),
                                inside_id="webnode"),
            ]
        ),
        infrastructure,
    )
    result = ConfigurationEngine(registry,
                                 verify_registry=False).configure(partial)
    partial_lines = line_count(partial_to_json(partial))
    full_lines = line_count(full_to_json(result.spec))
    row("partial spec resources", 7, len(partial))
    row("partial spec lines", 61, partial_lines)
    row("full spec resources", 29, len(result.spec))
    row("full spec lines", 1444, full_lines)
    row("expansion ratio (lines)", "23.7x",
        f"{full_lines / partial_lines:.1f}x")

    deployment = MasterCoordinator(
        registry, infrastructure, standard_drivers()).deploy(result.spec)
    row("multi-host deploy", "production", deployment.is_deployed())
    row("machine order", "db before web", deployment.report.waves)


def e9() -> None:
    header("E9", "FA upgrade with rollback (S6.2)")
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    drivers = standard_drivers()
    fa_v1, fa_v2 = fa_snapshots()
    key_v1 = package_application(fa_v1, registry, infrastructure)
    key_v2 = package_application(fa_v2, registry, infrastructure)
    key_bad = package_application(fa_broken_snapshot(), registry,
                                  infrastructure)
    config_engine = ConfigurationEngine(registry, verify_registry=False)
    deploy_engine = DeploymentEngine(registry, infrastructure, drivers)
    upgrader = UpgradeEngine(config_engine, deploy_engine)

    def partial_for(key):
        return provision_partial_spec(
            registry,
            PartialInstallSpec(
                [
                    PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                    config={"hostname": "prod"}),
                    PartialInstance("app", key, inside_id="node"),
                    PartialInstance("web", as_key("Gunicorn 0.13"),
                                    inside_id="node"),
                    PartialInstance("db", as_key("MySQL 5.1"),
                                    inside_id="node"),
                ]
            ),
            infrastructure,
        )

    system = deploy_engine.deploy(
        config_engine.configure(partial_for(key_v1)).spec)
    machine = infrastructure.network.machine("prod")
    database = SimDatabase(machine.fs, "/var/lib/mysql/app.json")
    database.insert("applicants", {"id": 1, "name": "Ada", "area": "PL"})

    result = upgrader.upgrade(system, partial_for(key_v2))
    row("v1 -> v2 upgrade", "succeeds", result.succeeded)
    row("schema migrated", "yes", "decision" in database.columns("applicants"))
    row("db content preserved", "yes", database.count("applicants") == 1)

    result2 = upgrader.upgrade(result.system, partial_for(key_bad))
    row("broken upgrade rolls back", "yes", result2.rolled_back)
    row("version after rollback", "previous",
        str(result2.system.spec["app"].key))
    row("system active after rollback", "yes",
        result2.system.is_deployed())


def e11_e12() -> None:
    header("E11", "driver guards (Figure 3)")
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    engine = DeploymentEngine(registry, infrastructure, standard_drivers())
    spec = ConfigurationEngine(registry).configure(openmrs_partial()).spec
    system = engine.deploy(spec)
    starts = [a.instance_id for a in system.report.actions
              if a.action == "start"]
    row("start order respects deps", "yes",
        starts.index("mysql") < starts.index("openmrs"))
    row("sequential deploy", "-",
        f"{system.report.sequential_seconds / 60:.1f} min (simulated)")
    row("parallel makespan", "-",
        f"{system.report.makespan_seconds / 60:.1f} min (simulated)")

    header("E12", "solver/encoding ablation")
    from repro.sat import CnfFormula, ExactlyOneEncoding, exactly_one

    for n in (10, 40, 120):
        pairwise = CnfFormula()
        exactly_one(pairwise, [pairwise.new_var() for _ in range(n)],
                    ExactlyOneEncoding.PAIRWISE)
        sequential = CnfFormula()
        exactly_one(sequential, [sequential.new_var() for _ in range(n)],
                    ExactlyOneEncoding.SEQUENTIAL)
        row(f"exactly-one clauses (n={n})",
            "O(n^2) vs O(n)",
            f"pairwise={pairwise.num_clauses} "
            f"sequential={sequential.num_clauses}")


FLEET_RESULTS = pathlib.Path(__file__).parent / "BENCH_fleet.json"


def _fmt_bytes(count) -> str:
    if count is None:
        return "-"
    if count >= 1 << 20:
        return f"{count / (1 << 20):.1f}MiB"
    if count >= 1 << 10:
        return f"{count / (1 << 10):.1f}KiB"
    return f"{count}B"


def _fleet_serial(data: dict) -> None:
    serial = data.get("serial")
    if not serial:
        print("  (no serial section -- run test_bench_fleet.py)")
        return
    print(f"  speedup floor at largest size: "
          f"{serial.get('speedup_floor')}x")
    print(f"  {'nodes':>7} {'comps':>6} {'mono s':>9} {'part s':>9} "
          f"{'mono n/s':>10} {'part n/s':>10} {'speedup':>8}")
    for size in serial.get("sizes", []):
        print(f"  {size['nodes']:>7} {size['components']:>6} "
              f"{size['monolithic_seconds']:>9.3f} "
              f"{size['partitioned_seconds']:>9.3f} "
              f"{size['monolithic_nodes_per_sec']:>10.0f} "
              f"{size['partitioned_nodes_per_sec']:>10.0f} "
              f"{size['speedup']:>7.2f}x")


def _fleet_parallel(data: dict) -> None:
    parallel = data.get("parallel")
    if not parallel:
        print("  (no parallel section -- run test_bench_fleet.py)")
        return
    enforced = "enforced" if parallel.get("floor_enforced") else (
        f"recorded only ({data.get('cores')} cores)")
    print(f"  speedup floor at 4 workers: "
          f"{parallel.get('speedup_floor_at_4_workers')}x ({enforced})")
    print(f"  best observed throughput: "
          f"{parallel.get('ceiling_nodes_per_sec'):.0f} nodes/sec")
    print(f"  {'nodes':>7} {'wkrs':>5} {'seconds':>9} {'n/s':>9} "
          f"{'vs 1wkr':>8} {'reply':>9} {'dispatch':>9} {'solve ms':>9} "
          f"{'prop ms':>8}")
    for size in parallel.get("sizes", []):
        print(f"  {size['nodes']:>7} {'ser':>5} "
              f"{size['serial_seconds']:>9.3f} "
              f"{size['serial_nodes_per_sec']:>9.0f} "
              f"{'-':>8} {'-':>9} {'-':>9} {'-':>9} {'-':>8}")
        for run in size.get("workers", []):
            wire = run.get("wire_bytes") or {}
            stage = run.get("stage_ms") or {}
            print(f"  {size['nodes']:>7} {run['workers']:>5} "
                  f"{run['seconds']:>9.3f} "
                  f"{run['nodes_per_sec']:>9.0f} "
                  f"{run['speedup_vs_1_worker']:>7.2f}x "
                  f"{_fmt_bytes(wire.get('reply')):>9} "
                  f"{stage.get('dispatch', '-'):>9} "
                  f"{stage.get('solve', '-'):>9} "
                  f"{stage.get('propagate', '-'):>8}")


def _fleet_wire(data: dict) -> None:
    wire = data.get("wire")
    if not wire:
        print("  (no wire section -- run test_bench_ipc.py)")
        return
    print(f"  {wire['nodes']} nodes / {wire['components']} components / "
          f"{wire['workers']} workers; warm floor "
          f"{wire['reduction_floor_warm']}x")
    print(f"  {'path':<6} {'reply':>10} {'legacy':>10} {'cut':>7} "
          f"{'request':>10} {'largest':>9}")
    for path in ("cold", "warm"):
        row_data = wire.get(path)
        if not row_data:
            continue
        print(f"  {path:<6} {_fmt_bytes(row_data['reply_bytes']):>10} "
              f"{_fmt_bytes(row_data['legacy_reply_bytes']):>10} "
              f"{row_data['reduction']:>6.1f}x "
              f"{_fmt_bytes(row_data['request_bytes']):>10} "
              f"{_fmt_bytes(row_data['largest_reply_bytes']):>9}")


def fleet_report() -> int:
    """Render BENCH_fleet.json as one table (the --fleet mode)."""
    if not FLEET_RESULTS.exists():
        print(f"no results at {FLEET_RESULTS}; run the fleet benchmarks "
              f"first:\n  PYTHONPATH=src python -m pytest "
              f"benchmarks/test_bench_fleet.py benchmarks/test_bench_ipc.py "
              f"-o addopts=")
        return 1
    data = json.loads(FLEET_RESULTS.read_text(encoding="utf-8"))
    print("fleet configuration benchmarks "
          f"({data.get('benchmark', '?')}, {data.get('cores', '?')} cores)")
    print("=" * 68)
    header("F1", "serial: partitioned vs monolithic")
    _fleet_serial(data)
    header("F2", "parallel: worker matrix")
    _fleet_parallel(data)
    header("F3", "wire: compact protocol vs legacy replies")
    _fleet_wire(data)
    print()
    return 0


DELTA_RESULTS = pathlib.Path(__file__).parent / "BENCH_delta.json"


def _delta_elasticity(data: dict) -> None:
    elasticity = data.get("elasticity")
    if not elasticity:
        print("  (no elasticity section -- run test_bench_delta.py)")
        return
    ladder = " -> ".join(str(r) for r in elasticity.get("ladder", []))
    print(f"  ladder {ladder} replicas on {elasticity.get('machines')} "
          f"machines ({', '.join(elasticity.get('stacks', []))})")
    print(f"  {'replicas':>14} {'nodes':>7} {'diff':>6} {'plan':>6} "
          f"{'frac':>6} {'plan s':>8} {'exec s':>8}")
    for leg in elasticity.get("legs", []):
        print(f"  {leg['from_replicas']:>5} -> {leg['to_replicas']:>5} "
              f"{leg['fleet_nodes']:>7} {leg['diff_size']:>6} "
              f"{leg['plan_size']:>6} {leg['plan_fraction']:>6.2f} "
              f"{leg['plan_seconds']:>8.3f} {leg['execute_seconds']:>8.3f}")
    print(f"  fresh deploy of final goal: "
          f"{elasticity.get('fresh_deploy_seconds_final', 0):.2f}s "
          f"(equivalence + bit-identical replay asserted in-test)")


def _delta_scale(data: dict) -> None:
    scale = data.get("scale")
    if not scale:
        print("  (no scale section -- run test_bench_delta.py)")
        return
    print(f"  +{scale['grow_by']} replicas against a live "
          f"{scale['replicas']}-replica fleet "
          f"({scale['fleet_nodes']} nodes)")
    row("plan size", f"<= {scale['max_plan_fraction']:.0%} of fleet",
        f"{scale['plan_size']} steps "
        f"({scale['plan_fraction']:.2%} of fleet)")
    row("plan wall-clock", "-", f"{scale['plan_seconds']:.3f}s")
    row("delta execute", "-", f"{scale['execute_seconds']:.3f}s")
    row("worst-case full redeploy", "-",
        f"{scale['worst_case_redeploy_seconds']:.3f}s")
    row("speedup vs redeploy", ">1x",
        f"{scale['speedup_vs_redeploy']:.1f}x")


def delta_report() -> int:
    """Render BENCH_delta.json as one table (the --delta mode)."""
    if not DELTA_RESULTS.exists():
        print(f"no results at {DELTA_RESULTS}; run the delta benchmarks "
              f"first:\n  PYTHONPATH=src python -m pytest "
              f"benchmarks/test_bench_delta.py -o addopts=")
        return 1
    data = json.loads(DELTA_RESULTS.read_text(encoding="utf-8"))
    print("delta transition benchmarks "
          f"({data.get('benchmark', '?')})")
    print("=" * 68)
    header("D1", "elasticity ladder: plan size is O(diff)")
    _delta_elasticity(data)
    header("D2", "small delta against the full fleet")
    _delta_scale(data)
    print()
    return 0


BUS_RESULTS = pathlib.Path(__file__).parent / "BENCH_bus.json"


def _bus_partition_sweep(data: dict) -> None:
    sweep = data.get("partition_sweep")
    if not sweep:
        print("  (no partition_sweep section -- run test_bench_bus.py)")
        return
    print(f"  {sweep['instances']} instances on {sweep['machines']} "
          f"machines; baseline makespan "
          f"{sweep['baseline_makespan_seconds']:.0f}s")
    print(f"  {'cut s':>7} {'recover s':>10} {'msgs sent':>10} "
          f"{'lost':>7} {'retrans':>8} {'dup acks':>9}")
    for row_ in sweep.get("sweep", []):
        print(f"  {row_['partition_seconds']:>7.0f} "
              f"{row_['time_to_recover_seconds']:>10.1f} "
              f"{row_['messages_sent']:>10} "
              f"{row_['partition_losses']:>7} "
              f"{row_['retransmits']:>8} "
              f"{row_['redundant_acks']:>9}")


def _bus_failover(data: dict) -> None:
    failover = data.get("failover")
    if not failover:
        print("  (no failover section -- run test_bench_bus.py)")
        return
    row("masters", "1 + standby", "master -> master-2 at "
        f"{failover['failover_at_seconds']:.0f}s")
    row("makespan overhead", "~0s",
        f"{failover['makespan_overhead_seconds']:.1f}s")
    row("work re-executed", "0",
        f"0 (executions == {failover['machines']} machines)")
    row("message overhead", "bounded",
        f"{failover['messages_sent_failover']}"
        f" vs {failover['messages_sent_unfaulted']} unfaulted")


def bus_report() -> int:
    """Render BENCH_bus.json as one table (the --bus mode)."""
    if not BUS_RESULTS.exists():
        print(f"no results at {BUS_RESULTS}; run the bus benchmarks "
              f"first:\n  PYTHONPATH=src python -m pytest "
              f"benchmarks/test_bench_bus.py -o addopts=")
        return 1
    data = json.loads(BUS_RESULTS.read_text(encoding="utf-8"))
    print("bus control-plane benchmarks "
          f"({data.get('benchmark', '?')})")
    print("=" * 68)
    header("B1", "partition sweep: recovery tracks the cut")
    _bus_partition_sweep(data)
    header("B2", "master failover: adopt, don't redo")
    _bus_failover(data)
    print()
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fleet", action="store_true",
        help="render benchmarks/BENCH_fleet.json instead of rerunning "
             "the paper evaluation",
    )
    parser.add_argument(
        "--delta", action="store_true",
        help="render benchmarks/BENCH_delta.json instead of rerunning "
             "the paper evaluation",
    )
    parser.add_argument(
        "--bus", action="store_true",
        help="render benchmarks/BENCH_bus.json instead of rerunning "
             "the paper evaluation",
    )
    args = parser.parse_args()
    if args.fleet:
        sys.exit(fleet_report())
    if args.delta:
        sys.exit(delta_report())
    if args.bus:
        sys.exit(bus_report())
    print("Engage (PLDI 2012) -- evaluation reproduction report")
    print("=" * 68)
    e1_e2_e3()
    e4_e5()
    e6()
    e7_e10()
    e8()
    e9()
    e11_e12()
    print()
    print("=" * 68)
    print("done.")


if __name__ == "__main__":
    main()
