"""Self-healing at fleet scale: time-to-repair under chaos churn.

One results file (``benchmarks/BENCH_reconcile.json``), two sections:

* **soak** -- a ~1000-instance fleet (208 replicas on 64 machines) runs
  the autonomic reconcile loop for 8 rounds while a seeded
  :class:`~repro.sim.faults.MachineChurn` permanently kills ~4% of live
  machines per round.  Asserts that *every* round converges, that each
  round's repair plan stays well below a quarter of the fleet (delta
  repair, not redeploy-the-world), and that an identical second run is
  bit-identical (same seeds, same losses, same plans, same journal).
* **rates** -- the time-to-repair curve across churn rates on a smaller
  fleet: median time-to-repair grows with the damage rate, and the
  recorded per-round curves make the scaling visible in the JSON.

Simulated seconds measure repair cost (how much driver work a repair
round performs); wall seconds are recorded per section for honesty.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.config import ConfigurationEngine
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.library.fleet import FleetTopology, fleet_partial
from repro.runtime import (
    DeploymentEngine,
    DeploymentJournal,
    ReconcileController,
)
from repro.sim import MachineChurn

#: ~1000 graph nodes: the headline self-healing scenario.
SOAK_TOPOLOGY = FleetTopology(replicas=208, machines=64)
SOAK_ROUNDS = 8
SOAK_SEED = 7
SOAK_RATE = 0.04

#: The time-to-repair curve: churn rates swept on a smaller fleet.
RATE_TOPOLOGY = FleetTopology(replicas=48, machines=16)
RATE_SWEEP = (0.02, 0.05, 0.10)
RATE_ROUNDS = 6
RATE_SEED = 11

#: Every repair plan must stay below this fraction of the fleet.
MAX_PLAN_FRACTION = 0.25

RESULTS_PATH = pathlib.Path(__file__).parent / "BENCH_reconcile.json"


def _update_results(section: str, payload: dict) -> dict:
    """Merge ``section`` into the shared results file and return it."""
    data: dict = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            data = {}
    data["benchmark"] = "reconcile_churn"
    data[section] = payload
    RESULTS_PATH.write_text(
        json.dumps(data, indent=2) + "\n", encoding="utf-8"
    )
    return data


def _soak(topology, *, seed, rate, rounds, interval=60.0):
    """Deploy a fleet, churn it, reconcile it; returns the outcome."""
    registry = standard_registry()
    spec = (
        ConfigurationEngine(registry, partition=True, verify_registry=False)
        .configure(fleet_partial(topology))
        .spec
    )
    infrastructure = standard_infrastructure()
    engine = DeploymentEngine(registry, infrastructure, standard_drivers())
    journal = DeploymentJournal(spec)
    system = engine.deploy(spec, journal=journal)
    assert system.is_deployed()
    controller = ReconcileController(engine, system, interval=interval)
    churn = MachineChurn(system, seed=seed, rate=rate)
    result = controller.run(rounds=rounds, churn=churn)
    return spec, system, journal, churn, result


def test_thousand_node_fleet_heals_under_churn():
    started = time.perf_counter()
    spec, system, journal, churn, result = _soak(
        SOAK_TOPOLOGY, seed=SOAK_SEED, rate=SOAK_RATE, rounds=SOAK_ROUNDS
    )
    wall_seconds = time.perf_counter() - started
    fleet_size = len(spec)
    assert fleet_size >= 1000

    # Every round converges, and every repair is a delta, not a rebuild.
    assert all(round_.converged for round_ in result.rounds)
    assert system.is_deployed()
    machines_lost = sum(1 for _ in churn.records)
    assert machines_lost > 0, "the soak must actually lose machines"
    for round_ in result.rounds:
        assert round_.plan_size <= fleet_size * MAX_PLAN_FRACTION

    # Determinism: the same seeds replay to the bit.
    _, _, journal2, churn2, result2 = _soak(
        SOAK_TOPOLOGY, seed=SOAK_SEED, rate=SOAK_RATE, rounds=SOAK_ROUNDS
    )
    assert json.dumps(result.to_payload(), sort_keys=True) == json.dumps(
        result2.to_payload(), sort_keys=True
    )
    assert sorted(journal.states().items()) == sorted(
        journal2.states().items()
    )
    assert [r.hostname for r in churn.records] == [
        r.hostname for r in churn2.records
    ]

    _update_results(
        "soak",
        {
            "instances": fleet_size,
            "machines": len(spec.machines()),
            "rounds": SOAK_ROUNDS,
            "churn_seed": SOAK_SEED,
            "churn_rate": SOAK_RATE,
            "machines_lost": machines_lost,
            "median_time_to_repair_s": result.median_time_to_repair,
            "max_plan_fraction": max(
                round_.plan_size / fleet_size for round_ in result.rounds
            ),
            "wall_seconds": wall_seconds,
            "time_to_repair_curve": [
                {
                    "round": round_.index,
                    "drift_items": round_.drift_items,
                    "plan_size": round_.plan_size,
                    "time_to_repair_s": round_.time_to_repair,
                }
                for round_ in result.rounds
            ],
        },
    )


def test_time_to_repair_scales_with_churn_rate():
    started = time.perf_counter()
    rows = []
    for rate in RATE_SWEEP:
        spec, _, _, _, result = _soak(
            RATE_TOPOLOGY, seed=RATE_SEED, rate=rate, rounds=RATE_ROUNDS
        )
        assert all(round_.converged for round_ in result.rounds)
        rows.append(
            {
                "churn_rate": rate,
                "instances": len(spec),
                "rounds_with_drift": result.rounds_with_drift,
                "median_time_to_repair_s": result.median_time_to_repair,
                "total_repairs": sum(r.plan_size for r in result.rounds),
                "time_to_repair_curve": [
                    round_.time_to_repair for round_ in result.rounds
                ],
            }
        )
    # More churn, more repair work: total repairs grow with the rate.
    repairs = [row["total_repairs"] for row in rows]
    assert repairs == sorted(repairs)
    assert rows[-1]["total_repairs"] > rows[0]["total_repairs"]
    _update_results(
        "rates",
        {
            "seed": RATE_SEED,
            "rounds_per_rate": RATE_ROUNDS,
            "wall_seconds": time.perf_counter() - started,
            "sweep": rows,
        },
    )
