"""E7/E10 -- the S6.2 configuration space and resource census.

Paper: "we currently support 256 distinct deployment configurations on a
single node": OS (4: two MacOSX + two Ubuntu versions) x web server
(Gunicorn | Apache) x database (SQLite | MySQL) x four independent
optional components (RabbitMQ/Celery, Redis, memcached, Monit).  And:
"Django support involves 37 resources, of which 14 are specific to
Django applications."
"""

from __future__ import annotations

import itertools

import pytest

import time

from repro.config import ConfigurationEngine, ConfigurationSession
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.dsl import full_to_json
from repro.django import package_application, table1_apps
from repro.library import standard_infrastructure, standard_registry

OS_CHOICES = (
    "Mac-OSX 10.5",
    "Mac-OSX 10.6",
    "Ubuntu-Linux 10.04",
    "Ubuntu-Linux 10.10",
)
WEB_CHOICES = ("Gunicorn 0.13", "Apache-HTTPD 2.2")
DB_CHOICES = ("SQLite 3.7", "MySQL 5.1")
OPTIONAL = ("Celery 2.4", "Redis 2.4", "Memcached 1.4", "Monit 5.3")


def all_configurations():
    """The full 4 x 2 x 2 x 2^4 = 256 grid."""
    option_subsets = list(
        itertools.chain.from_iterable(
            itertools.combinations(OPTIONAL, r)
            for r in range(len(OPTIONAL) + 1)
        )
    )
    return [
        (os_key, web, db, extras)
        for os_key in OS_CHOICES
        for web in WEB_CHOICES
        for db in DB_CHOICES
        for extras in option_subsets
    ]


def partial_for(app_key, os_key, web, db, extras):
    instances = [
        PartialInstance("node", as_key(os_key), config={"hostname": "n1"}),
        PartialInstance("app", app_key, inside_id="node"),
        PartialInstance("web", as_key(web), inside_id="node"),
        PartialInstance("db", as_key(db), inside_id="node"),
    ]
    for index, extra in enumerate(extras):
        instances.append(
            PartialInstance(f"opt{index}", as_key(extra), inside_id="node")
        )
    return PartialInstallSpec(instances)


def sweep():
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    app = next(a for a in table1_apps() if a.name == "Areneae")
    app_key = package_application(app, registry, infrastructure)
    engine = ConfigurationEngine(registry, verify_registry=False)

    solved = 0
    web_kinds = set()
    db_engines = set()
    for os_key, web, db, extras in all_configurations():
        result = engine.configure(
            partial_for(app_key, os_key, web, db, extras)
        )
        app_instance = result.spec["app"]
        web_kinds.add(app_instance.inputs["webserver"]["kind"])
        db_engines.add(app_instance.inputs["database"]["engine"])
        expected_keys = {as_key(e) for e in extras}
        deployed_keys = {i.key for i in result.spec}
        assert expected_keys <= deployed_keys
        solved += 1
    return solved, web_kinds, db_engines


def test_e7_all_256_configurations_solve(benchmark):
    solved, web_kinds, db_engines = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "paper_configurations": 256,
            "measured_configurations": solved,
            "web_kinds": sorted(web_kinds),
            "db_engines": sorted(db_engines),
        }
    )
    assert solved == 256
    assert web_kinds == {"gunicorn", "apache"}
    assert db_engines == {"sqlite", "mysql"}


def test_e7_single_configuration_latency(benchmark, registry, infrastructure):
    """Per-configuration cost of the constraint pipeline (the quantity a
    user waits on for each deploy)."""
    app = next(a for a in table1_apps() if a.name == "Areneae")
    app_key = package_application(app, registry, infrastructure)
    engine = ConfigurationEngine(registry, verify_registry=False)
    partial = partial_for(
        app_key, "Ubuntu-Linux 10.04", "Gunicorn 0.13", "MySQL 5.1",
        ("Redis 2.4",),
    )
    result = benchmark(engine.configure, partial)
    assert "app" in result.spec


def test_e7_session_warm_sweep_vs_cold(benchmark, registry, infrastructure):
    """The incremental-session speedup on the 256-configuration sweep.

    Cold baseline: a fresh per-call :class:`ConfigurationEngine`
    pipeline for every configuration.  Warm: the same 256 queries
    through a primed :class:`ConfigurationSession`.  The acceptance bar
    is warm <= cold / 3, with identical output and cache counters
    proving that graphs, encodings, and solver state were reused.
    """
    app = next(a for a in table1_apps() if a.name == "Areneae")
    app_key = package_application(app, registry, infrastructure)
    partials = [
        partial_for(app_key, *config) for config in all_configurations()
    ]
    engine = ConfigurationEngine(registry, verify_registry=False)

    started = time.perf_counter()
    cold_specs = [full_to_json(engine.configure(p).spec) for p in partials]
    cold_ids = [engine.configure(p).deployed_ids for p in partials]
    cold_seconds = (time.perf_counter() - started) / 2  # two cold sweeps

    session = ConfigurationSession(registry, verify_registry=False)
    for partial in partials:
        session.configure(partial)  # prime every cache

    def warm_sweep():
        return [session.configure(partial) for partial in partials]

    results = benchmark.pedantic(warm_sweep, rounds=3, iterations=1)
    warm_seconds = benchmark.stats.stats.mean

    # Bit-identical to the cold per-call pipeline.
    for result, spec_json, ids in zip(results, cold_specs, cold_ids):
        assert full_to_json(result.spec) == spec_json
        assert result.deployed_ids == ids

    # The counters prove reuse: every benchmarked call hit every cache.
    stats = session.stats
    assert stats.graph_misses == 256
    assert stats.graph_hits == stats.configure_calls - 256
    assert stats.solver_reuses == stats.configure_calls - 256
    assert all(r.cache.graph_hit for r in results)
    assert all(r.cache.solver_reused for r in results)
    assert all(r.solver_stats.solve_calls >= 2 for r in results)

    benchmark.extra_info.update(
        {
            "configurations": len(partials),
            "cold_engine_seconds": round(cold_seconds, 3),
            "warm_session_seconds": round(warm_seconds, 3),
            "warm_over_cold": round(warm_seconds / cold_seconds, 3),
            "graph_hit_rate": round(stats.hit_rate, 3),
        }
    )
    assert warm_seconds <= cold_seconds / 3


def test_e10_resource_census(benchmark):
    """E10: library size vs the paper's 37 resources (14 Django-specific).

    Our census: the built-in library plus the resource types the packager
    generates for the Table 1 corpus.
    """

    def census():
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        builtin = len(registry)
        for app in table1_apps():
            package_application(app, registry, infrastructure)
        total = len(registry)
        django_specific = sum(
            1
            for key in registry.keys()
            if key.name.startswith(("DjangoApp-", "PyPkg-"))
            or key.name in ("Django", "South", "Gunicorn", "Celery",
                            "Django-App", "Python-Runtime", "WebServer")
        )
        return builtin, total, django_specific

    builtin, total, django_specific = benchmark(census)
    benchmark.extra_info.update(
        {
            "paper_django_resources": 37,
            "paper_django_specific": 14,
            "measured_builtin_resources": builtin,
            "measured_total_with_apps": total,
            "measured_django_related": django_specific,
        }
    )
    assert 25 <= builtin <= 45
    assert total > builtin  # packaging generated new types
