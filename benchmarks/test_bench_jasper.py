"""E4/E5 -- the S6.1 JasperReports case study.

Paper numbers:

* partial spec 26 lines -> full spec 434 lines (~17x);
* automated install takes 17 minutes from the internet, 5 minutes from a
  local file cache (~3.4x);
* authoring cost: the JDBC connector needed 40 lines of type metadata
  and zero driver code; Jasper needed 69 lines of types + 201 of driver;
* manual installs converge 5h -> 2h15 -> ~1h, versus a one-time 3h56 of
  automation after which repeat installs cost no manual effort.
"""

from __future__ import annotations

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.dsl import (
    format_resource_type,
    full_to_json,
    line_count,
    partial_to_json,
)
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import DeploymentEngine


def jasper_partial():
    return PartialInstallSpec(
        [
            PartialInstance(
                "server",
                as_key("Ubuntu-Linux 10.04"),
                config={"hostname": "reports"},
            ),
            PartialInstance(
                "tomcat", as_key("Tomcat 6.0.18"), inside_id="server"
            ),
            PartialInstance(
                "jasper",
                as_key("JasperReports-Server 4.2"),
                inside_id="tomcat",
            ),
        ]
    )


def deploy_jasper(use_cache: bool, prefetched: bool) -> float:
    """Deploy the Jasper stack on a fresh world; simulated seconds."""
    registry = standard_registry()
    infrastructure = standard_infrastructure(use_cache=use_cache)
    if prefetched:
        for name, version in (
            ("jdk", "1.6"),
            ("jre", "1.6"),
            ("tomcat", "6.0.18"),
            ("mysql", "5.1"),
            ("jasperreports-server", "4.2"),
            ("mysql-jdbc-connector", "5.1.17"),
        ):
            infrastructure.downloads.prefetch(name, version)
    spec = ConfigurationEngine(registry).configure(jasper_partial()).spec
    engine = DeploymentEngine(registry, infrastructure, standard_drivers())
    system = engine.deploy(spec)
    assert system.is_deployed()
    return infrastructure.clock.now


def test_e4_spec_compaction(benchmark, registry):
    """E4a: Jasper partial -> full line counts (paper: 26 -> 434)."""
    engine = ConfigurationEngine(registry)
    partial = jasper_partial()
    result = benchmark(engine.configure, partial)

    partial_lines = line_count(partial_to_json(partial))
    full_lines = line_count(full_to_json(result.spec))
    benchmark.extra_info.update(
        {
            "paper_partial_lines": 26,
            "paper_full_lines": 434,
            "measured_partial_lines": partial_lines,
            "measured_full_lines": full_lines,
            "measured_ratio": round(full_lines / partial_lines, 1),
            "instances": sorted(result.spec.ids()),
        }
    )
    assert full_lines / partial_lines > 5
    # Engage resolved Java, the JDBC connector, and MySQL automatically.
    key_names = {i.key.name for i in result.spec}
    assert "MySQL-JDBC-Connector" in key_names
    assert "MySQL" in key_names


def test_e4_install_time_internet_vs_cached(benchmark):
    """E4b: install wall-clock, internet vs local file cache.

    Paper: 17 min vs 5 min (ratio 3.4x).  Our simulated substrate should
    land in the same regime: minutes-scale totals, cached several-fold
    faster.
    """
    internet_seconds = deploy_jasper(use_cache=False, prefetched=False)

    def cached_run():
        return deploy_jasper(use_cache=True, prefetched=True)

    cached_seconds = benchmark(cached_run)
    ratio = internet_seconds / cached_seconds

    benchmark.extra_info.update(
        {
            "paper_internet_minutes": 17,
            "paper_cached_minutes": 5,
            "paper_ratio": 3.4,
            "simulated_internet_minutes": round(internet_seconds / 60, 1),
            "simulated_cached_minutes": round(cached_seconds / 60, 1),
            "simulated_ratio": round(ratio, 1),
        }
    )
    assert 2.0 < ratio < 8.0
    # Minutes-scale, not seconds or hours.
    assert 5 * 60 < internet_seconds < 40 * 60
    assert 1 * 60 < cached_seconds < 15 * 60


def test_e5_authoring_cost_model(benchmark, registry):
    """E5: resource-authoring effort vs repeated manual installs.

    Human hours cannot be re-measured; the preserved shape is (a) the
    JDBC connector needs *zero* lines of driver code thanks to the
    generic archive driver, (b) type metadata is tens of lines per
    resource, and (c) automation amortises: N repeat installs cost no
    additional user input, while manual installs cost hours each time.
    """
    import inspect

    from repro.library.java import JasperDriver, JdbcConnectorDriver

    def measure():
        jdbc_type_lines = len(
            format_resource_type(
                registry.raw(as_key("MySQL-JDBC-Connector 5.1.17"))
            ).splitlines()
        )
        jasper_type_lines = len(
            format_resource_type(
                registry.raw(as_key("JasperReports-Server 4.2"))
            ).splitlines()
        )
        jasper_driver_lines = len(
            inspect.getsource(JasperDriver).splitlines()
        )
        jdbc_driver_lines = len(
            [
                l
                for l in inspect.getsource(JdbcConnectorDriver).splitlines()
                if l.strip() and not l.strip().startswith(("#", '"""', "'''"))
            ]
        )
        return (
            jdbc_type_lines,
            jasper_type_lines,
            jasper_driver_lines,
            jdbc_driver_lines,
        )

    jdbc_type, jasper_type, jasper_driver, jdbc_driver = benchmark(measure)
    benchmark.extra_info.update(
        {
            "paper_jdbc_type_lines": 40,
            "paper_jasper_type_lines": 69,
            "paper_jasper_driver_lines": 201,
            "paper_jdbc_driver_lines": 0,
            "measured_jdbc_type_lines": jdbc_type,
            "measured_jasper_type_lines": jasper_type,
            "measured_jasper_driver_lines": jasper_driver,
            "measured_jdbc_driver_body_lines": jdbc_driver,
        }
    )
    # Same order of magnitude as the paper's authoring cost, and the JDBC
    # driver is (essentially) empty: pure reuse of the generic driver.
    assert 3 <= jdbc_type <= 80
    assert 5 <= jasper_type <= 120
    assert jdbc_driver <= 3
