"""E9 -- the FA upgrade experiment (S6.2).

Paper: two FA production snapshots four months apart, with UI, logic,
and database schema changes; South migrations upgrade in place while
"preserving the content in the database"; an injected error in the
second version makes the upgrade fail and "Engage automatically rolls
back to the prior application version".
"""

from __future__ import annotations

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.django import (
    SimDatabase,
    fa_broken_snapshot,
    fa_snapshots,
    package_application,
)
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import (
    DeploymentEngine,
    UpgradeEngine,
    provision_partial_spec,
)


def build_world():
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    drivers = standard_drivers()
    fa_v1, fa_v2 = fa_snapshots()
    key_v1 = package_application(fa_v1, registry, infrastructure)
    key_v2 = package_application(fa_v2, registry, infrastructure)
    key_bad = package_application(
        fa_broken_snapshot(), registry, infrastructure
    )
    config_engine = ConfigurationEngine(registry, verify_registry=False)
    deploy_engine = DeploymentEngine(registry, infrastructure, drivers)

    def partial_for(key):
        return provision_partial_spec(
            registry,
            PartialInstallSpec(
                [
                    PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                    config={"hostname": "prod"}),
                    PartialInstance("app", key, inside_id="node"),
                    PartialInstance("web", as_key("Gunicorn 0.13"),
                                    inside_id="node"),
                    PartialInstance("db", as_key("MySQL 5.1"),
                                    inside_id="node"),
                ]
            ),
            infrastructure,
        )

    system = deploy_engine.deploy(
        config_engine.configure(partial_for(key_v1)).spec
    )
    machine = infrastructure.network.machine("prod")
    database = SimDatabase(machine.fs, "/var/lib/mysql/app.json")
    for row_id, name in enumerate(["Ada", "Grace", "Barbara"], start=1):
        database.insert(
            "applicants", {"id": row_id, "name": name, "area": "CS"}
        )
    upgrader = UpgradeEngine(config_engine, deploy_engine)
    return {
        "system": system,
        "database": database,
        "partial_for": partial_for,
        "keys": {"v1": key_v1, "v2": key_v2, "bad": key_bad},
        "upgrader": upgrader,
        "infrastructure": infrastructure,
    }


def test_e9_successful_upgrade_preserves_data(benchmark):
    def run():
        world = build_world()
        result = world["upgrader"].upgrade(
            world["system"], world["partial_for"](world["keys"]["v2"])
        )
        return world, result

    world, result = benchmark.pedantic(run, rounds=1, iterations=1)
    database = world["database"]
    benchmark.extra_info.update(
        {
            "succeeded": result.succeeded,
            "upgraded": result.diff.upgraded,
            "added": result.diff.added,
            "columns_after": database.columns("applicants"),
            "rows_after": database.count("applicants"),
        }
    )
    assert result.succeeded and not result.rolled_back
    assert "decision" in database.columns("applicants")
    assert database.count("applicants") == 3  # content preserved
    assert all(
        row["decision"] == "pending" for row in database.rows("applicants")
    )
    assert result.system.is_deployed()


def test_e9_failed_upgrade_rolls_back(benchmark):
    def run():
        world = build_world()
        result = world["upgrader"].upgrade(
            world["system"], world["partial_for"](world["keys"]["bad"])
        )
        return world, result

    world, result = benchmark.pedantic(run, rounds=1, iterations=1)
    database = world["database"]
    benchmark.extra_info.update(
        {
            "succeeded": result.succeeded,
            "rolled_back": result.rolled_back,
            "error": result.error,
            "app_version_after": str(
                result.system.spec["app"].key.version
            ),
            "rows_after": database.count("applicants"),
        }
    )
    assert not result.succeeded
    assert result.rolled_back
    assert str(result.system.spec["app"].key.version) == "1.0"
    assert database.count("applicants") == 3  # restored from backup
    assert result.system.is_deployed()


def test_ablation_in_place_vs_replace(benchmark):
    """The optimisation the paper leaves as future work ("We leave
    optimizations of the upgrade framework as future work"): an in-place
    strategy that only touches changed instances and their dependents.
    For the small FA diff it should beat the worst-case replace strategy
    by a wide margin of simulated time."""

    def run(strategy):
        world = build_world()
        infrastructure = world["infrastructure"]
        before = infrastructure.clock.now
        result = world["upgrader"].upgrade(
            world["system"],
            world["partial_for"](world["keys"]["v2"]),
            strategy=strategy,
        )
        assert result.succeeded
        return infrastructure.clock.now - before

    def both():
        return run("replace"), run("in_place")

    replace_seconds, in_place_seconds = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "replace_simulated_seconds": round(replace_seconds, 1),
            "in_place_simulated_seconds": round(in_place_seconds, 1),
            "speedup": round(replace_seconds / in_place_seconds, 1),
        }
    )
    assert in_place_seconds < replace_seconds / 3


def test_e9_worst_case_upgrade_time(benchmark):
    """The paper's admitted limitation: "all upgrades using this approach
    experience the worst case upgrade time" -- an upgrade costs about as
    much simulated time as a fresh deploy, even for a small diff."""

    def run():
        world = build_world()
        infrastructure = world["infrastructure"]
        before = infrastructure.clock.now
        world["upgrader"].upgrade(
            world["system"], world["partial_for"](world["keys"]["v2"])
        )
        upgrade_seconds = infrastructure.clock.now - before
        return upgrade_seconds

    upgrade_seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["upgrade_simulated_seconds"] = round(
        upgrade_seconds, 1
    )
    # Worst-case: a full stop + uninstall + redeploy, i.e. minutes of
    # simulated time, not the seconds an in-place no-op would cost.
    assert upgrade_seconds > 60
