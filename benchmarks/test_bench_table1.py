"""E6 -- Table 1: the eight Django applications.

Paper: "All eight applications were deployable by Engage without
requiring any application-specific deployment code."  The applications
here are synthetic stand-ins with the structural properties Table 1
reports (see DESIGN.md S3); the property under test is exactly the
paper's: the generic packager + generic driver deploy every one.
"""

from __future__ import annotations

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.django import package_application, table1_apps
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import DeploymentEngine, provision_partial_spec


def deploy_all_apps():
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    drivers = standard_drivers()
    engine = ConfigurationEngine(registry, verify_registry=False)
    deploy = DeploymentEngine(registry, infrastructure, drivers)

    rows = []
    for index, app in enumerate(table1_apps()):
        key = package_application(app, registry, infrastructure)
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    f"node{index}",
                    as_key("Ubuntu-Linux 10.04"),
                    config={"hostname": f"host{index}"},
                ),
                PartialInstance(f"app{index}", key, inside_id=f"node{index}"),
            ]
        )
        partial = provision_partial_spec(registry, partial, infrastructure)
        result = engine.configure(partial)
        system = deploy.deploy(result.spec)
        rows.append(
            {
                "app": app.name,
                "source": app.source,
                "deployed": system.is_deployed(),
                "resources": len(result.spec),
                "pip_packages": len(app.pip_packages),
                "uses": [
                    flag
                    for flag, used in (
                        ("redis", app.uses_redis),
                        ("celery", app.uses_celery),
                        ("memcached", app.uses_memcached),
                        ("mongodb", app.uses_mongodb),
                    )
                    if used
                ],
            }
        )
    return rows


def test_e6_all_eight_apps_deploy(benchmark):
    rows = benchmark.pedantic(deploy_all_apps, rounds=1, iterations=1)
    benchmark.extra_info["table1"] = rows

    assert len(rows) == 8
    assert all(row["deployed"] for row in rows)
    # No application-specific deployment code exists: assert the driver
    # registry has exactly one Django driver, shared by all eight.
    drivers = standard_drivers()
    assert drivers.has("django-app")

    by_name = {row["app"]: row for row in rows}
    # Structural properties from Table 1's comments column.
    assert by_name["Django-Blog"]["pip_packages"] == 18
    assert "redis" in by_name["Buzzfire"]["uses"]
    assert {"redis", "celery", "memcached"} <= set(by_name["WebApp"]["uses"])
    # Richer apps pull in more resources.
    assert by_name["Django-Blog"]["resources"] > by_name["Areneae"]["resources"]


def test_e6_packager_validation_is_the_gate(benchmark):
    """The packager (not per-app code) is what vets applications: a
    malformed app is rejected before any resource is generated."""
    from repro.core.errors import SpecError
    from repro.django import DjangoAppDefinition, validate_application

    bad = DjangoAppDefinition(name="not valid!", version="x")

    def validate_all():
        problems = validate_application(bad)
        ok = [validate_application(app) for app in table1_apps()]
        return problems, ok

    problems, ok = benchmark(validate_all)
    assert problems  # the bad app is caught
    assert all(p == [] for p in ok)  # all Table 1 apps pass
