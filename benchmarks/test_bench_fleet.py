"""Fleet-scale configuration: partitioned vs monolithic solving.

The tentpole claim for component-partitioned configuration: on a fleet
whose GraphGen hypergraph splits into one component per machine, solving
the components independently and merging the decoded specs beats the
monolithic pipeline super-linearly -- the decode/propagate passes are
quadratic in nodes, so ``k`` components of ``n/k`` nodes cost roughly
``1/k`` of the monolithic run.  Asserts >= 3x at the largest measured
size (>= 512 resources) and records the raw numbers, nodes/sec and the
speedup curve in ``benchmarks/BENCH_fleet.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.config import ConfigurationEngine
from repro.dsl import full_to_json
from repro.library import standard_registry
from repro.library.fleet import FleetTopology, fleet_partial

#: (replicas, machines) -> roughly 512 / 2048 / 4096 graph nodes.
SIZES = ((96, 32), (384, 128), (768, 256))

#: Floor asserted at the largest size (acceptance: >=3x at >=512 nodes).
SPEEDUP_FLOOR = 3.0

RESULTS_PATH = pathlib.Path(__file__).parent / "BENCH_fleet.json"


def _timed(engine: ConfigurationEngine, partial):
    start = time.perf_counter()
    result = engine.configure(partial)
    return time.perf_counter() - start, result


def test_partitioned_fleet_speedup(registry):
    mono_engine = ConfigurationEngine(registry)
    part_engine = ConfigurationEngine(registry, partition=True)
    rows = []
    for replicas, machines in SIZES:
        topology = FleetTopology(replicas=replicas, machines=machines)
        mono_seconds, mono = _timed(
            mono_engine, fleet_partial(topology)
        )
        part_seconds, part = _timed(
            part_engine, fleet_partial(topology)
        )
        assert full_to_json(part.spec) == full_to_json(mono.spec)
        assert part.partition is not None
        assert part.partition.count == machines
        nodes = len(part.graph)
        rows.append({
            "replicas": replicas,
            "machines": machines,
            "nodes": nodes,
            "components": part.partition.count,
            "largest_component_nodes": part.partition.largest,
            "monolithic_seconds": round(mono_seconds, 4),
            "partitioned_seconds": round(part_seconds, 4),
            "monolithic_nodes_per_sec": round(nodes / mono_seconds, 1),
            "partitioned_nodes_per_sec": round(nodes / part_seconds, 1),
            "speedup": round(mono_seconds / part_seconds, 2),
        })

    largest = rows[-1]
    payload = {
        "benchmark": "fleet_partitioned_configure",
        "speedup_floor": SPEEDUP_FLOOR,
        "sizes": rows,
    }
    RESULTS_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    assert largest["nodes"] >= 512
    assert largest["speedup"] >= SPEEDUP_FLOOR, (
        f"partitioned configure only {largest['speedup']}x faster at "
        f"{largest['nodes']} nodes (floor {SPEEDUP_FLOOR}x): {rows}"
    )
    # Speedup grows with fleet size: quadratic passes amortised away.
    assert [r["speedup"] for r in rows] == sorted(
        r["speedup"] for r in rows
    )
