"""Fleet-scale configuration: partitioned and parallel solving.

Two claims, one results file (``benchmarks/BENCH_fleet.json``):

* **serial**: on a fleet whose GraphGen hypergraph splits into one
  component per machine, solving the components independently and
  merging the decoded specs beats the monolithic pipeline
  super-linearly -- the decode/propagate passes are quadratic in nodes,
  so ``k`` components of ``n/k`` nodes cost roughly ``1/k`` of the
  monolithic run.  Asserts >= 3x at the largest measured size.
* **parallel**: fanning those components out across a process pool
  (``workers=N``) multiplies partitioned throughput again.  Measures a
  1/2/4/8 worker matrix at 8k nodes (16k/32k and a ~100k stretch run
  are ``slow``-marked), asserts bit-identical output at every worker
  count, and asserts >= 2x at 4 workers over ``workers=1`` -- a floor
  that is only *enforced* when the machine actually has >= 4 cores
  (``cores`` is recorded in the JSON either way, so a single-core run
  still produces honest numbers instead of a vacuous pass).

The file is written read-modify-write so the serial and parallel tests
can run in any order (or alone) without clobbering each other's rows.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.config import ConfigurationEngine
from repro.dsl import full_to_json
from repro.library.fleet import FleetTopology, fleet_partial

#: (replicas, machines) -> roughly 512 / 2048 / 4096 graph nodes.
SIZES = ((96, 32), (384, 128), (768, 256))

#: Floor asserted at the largest serial size (>=3x at >=512 nodes).
SPEEDUP_FLOOR = 3.0

#: The worker matrix of the parallel benchmark (0 = serial in-process,
#: kept as the equivalence baseline row).
WORKER_MATRIX = (1, 2, 4, 8)

#: (replicas, machines) -> roughly 8192 graph nodes (16 nodes/machine).
PARALLEL_SIZES = ((1536, 512),)

#: Slow-marked extensions: ~16k and ~32k nodes.
PARALLEL_SIZES_SLOW = ((3072, 1024), (6144, 2048))

#: The ~100k-node stretch run (slow-marked; workers 1 and 4 only).
STRETCH_SIZE = (18750, 6250)

#: Floor at 4 workers vs workers=1, enforced only on >=4-core machines.
PARALLEL_SPEEDUP_FLOOR = 2.0

RESULTS_PATH = pathlib.Path(__file__).parent / "BENCH_fleet.json"


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without CPU affinity
        return os.cpu_count() or 1


def _update_results(section: str, payload: dict) -> dict:
    """Merge ``section`` into the shared results file and return it."""
    data: dict = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            data = {}
    if "sizes" in data:  # pre-parallel single-section format
        data = {}
    data["benchmark"] = "fleet_configure"
    data["cores"] = _cores()
    data[section] = payload
    RESULTS_PATH.write_text(
        json.dumps(data, indent=2) + "\n", encoding="utf-8"
    )
    return data


def _timed(engine: ConfigurationEngine, partial):
    start = time.perf_counter()
    result = engine.configure(partial)
    return time.perf_counter() - start, result


def test_partitioned_fleet_speedup(registry):
    mono_engine = ConfigurationEngine(registry)
    part_engine = ConfigurationEngine(registry, partition=True)
    rows = []
    for replicas, machines in SIZES:
        topology = FleetTopology(replicas=replicas, machines=machines)
        mono_seconds, mono = _timed(
            mono_engine, fleet_partial(topology)
        )
        part_seconds, part = _timed(
            part_engine, fleet_partial(topology)
        )
        assert full_to_json(part.spec) == full_to_json(mono.spec)
        assert part.partition is not None
        assert part.partition.count == machines
        nodes = len(part.graph)
        rows.append({
            "replicas": replicas,
            "machines": machines,
            "nodes": nodes,
            "components": part.partition.count,
            "largest_component_nodes": part.partition.largest,
            "monolithic_seconds": round(mono_seconds, 4),
            "partitioned_seconds": round(part_seconds, 4),
            "monolithic_nodes_per_sec": round(nodes / mono_seconds, 1),
            "partitioned_nodes_per_sec": round(nodes / part_seconds, 1),
            "speedup": round(mono_seconds / part_seconds, 2),
        })

    largest = rows[-1]
    _update_results("serial", {
        "speedup_floor": SPEEDUP_FLOOR,
        "sizes": rows,
    })

    assert largest["nodes"] >= 512
    assert largest["speedup"] >= SPEEDUP_FLOOR, (
        f"partitioned configure only {largest['speedup']}x faster at "
        f"{largest['nodes']} nodes (floor {SPEEDUP_FLOOR}x): {rows}"
    )
    # Speedup grows with fleet size: quadratic passes amortised away.
    assert [r["speedup"] for r in rows] == sorted(
        r["speedup"] for r in rows
    )


def _bench_worker_matrix(registry, sizes, matrix) -> list[dict]:
    """One row per size: the worker matrix, with equivalence asserted."""
    rows = []
    for replicas, machines in sizes:
        topology = FleetTopology(replicas=replicas, machines=machines)
        partial = fleet_partial(topology)

        serial_engine = ConfigurationEngine(
            registry, partition=True, verify_registry=False
        )
        serial_seconds, serial = _timed(serial_engine, partial)
        expected = full_to_json(serial.spec)
        nodes = len(serial.graph)

        runs = []
        base_seconds = None
        for workers in matrix:
            engine = ConfigurationEngine(
                registry, partition=True, workers=workers,
                verify_registry=False,
            )
            try:
                seconds, result = _timed(engine, partial)
            finally:
                engine.close()
            assert full_to_json(result.spec) == expected, (
                f"workers={workers} output differs from serial "
                f"partitioned at {nodes} nodes"
            )
            assert result.partition is not None
            assert result.partition.workers == workers
            if base_seconds is None:
                base_seconds = seconds
            run_row = {
                "workers": workers,
                "seconds": round(seconds, 4),
                "nodes_per_sec": round(nodes / seconds, 1),
                "speedup_vs_1_worker": round(base_seconds / seconds, 2),
            }
            wire = result.partition.wire
            if wire is not None:
                components = result.partition.components
                run_row["wire_bytes"] = {
                    "reply": wire.reply_bytes,
                    "request": wire.request_bytes,
                    "reply_frames": wire.reply_frames,
                    "largest_reply": wire.largest_reply_bytes,
                }
                run_row["stage_ms"] = {
                    "dispatch": round(wire.dispatch_ms, 2),
                    "recv_wait": round(wire.recv_wait_ms, 2),
                    "encode": round(
                        sum(c.encode_ms for c in components), 2
                    ),
                    "solve": round(
                        sum(c.solve_ms for c in components), 2
                    ),
                    "decode": round(
                        sum(c.decode_ms for c in components), 2
                    ),
                    "propagate": round(
                        sum(c.propagate_ms for c in components), 2
                    ),
                }
            runs.append(run_row)
        rows.append({
            "replicas": replicas,
            "machines": machines,
            "nodes": nodes,
            "components": machines,
            "serial_seconds": round(serial_seconds, 4),
            "serial_nodes_per_sec": round(nodes / serial_seconds, 1),
            "workers": runs,
        })
    return rows


def _finish_parallel(rows: list[dict]) -> None:
    """Merge ``rows`` into the results file and enforce the floor."""
    data: dict = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            data = {}
    existing = data.get("parallel", {}).get("sizes", [])
    by_nodes = {row["nodes"]: row for row in existing}
    for row in rows:
        by_nodes[row["nodes"]] = row
    merged = [by_nodes[nodes] for nodes in sorted(by_nodes)]
    # Best observed configure throughput across every pipeline
    # (serial partitioned included) -- the documented nodes/sec ceiling.
    ceiling = max(
        max(run["nodes_per_sec"] for run in row["workers"])
        if row["workers"] else 0.0
        for row in merged
    )
    ceiling = max(
        ceiling, max(row["serial_nodes_per_sec"] for row in merged)
    )
    cores = _cores()
    _update_results("parallel", {
        "speedup_floor_at_4_workers": PARALLEL_SPEEDUP_FLOOR,
        "floor_enforced": cores >= 4,
        "ceiling_nodes_per_sec": ceiling,
        "sizes": merged,
    })
    for row in rows:
        four = next(
            (r for r in row["workers"] if r["workers"] == 4), None
        )
        if four is None:
            continue
        if cores >= 4:
            assert four["speedup_vs_1_worker"] >= PARALLEL_SPEEDUP_FLOOR, (
                f"only {four['speedup_vs_1_worker']}x at 4 workers / "
                f"{row['nodes']} nodes on {cores} cores "
                f"(floor {PARALLEL_SPEEDUP_FLOOR}x): {row}"
            )


def test_parallel_fleet_worker_matrix(registry):
    """The 1/2/4/8 worker matrix at ~8k nodes (acceptance benchmark)."""
    rows = _bench_worker_matrix(registry, PARALLEL_SIZES, WORKER_MATRIX)
    assert rows[0]["nodes"] >= 8192
    _finish_parallel(rows)


@pytest.mark.slow
def test_parallel_fleet_worker_matrix_large(registry):
    """The slow 16k/32k extension of the worker matrix."""
    rows = _bench_worker_matrix(
        registry, PARALLEL_SIZES_SLOW, WORKER_MATRIX
    )
    assert rows[-1]["nodes"] >= 32768
    _finish_parallel(rows)


@pytest.mark.slow
def test_parallel_fleet_stretch_100k(registry):
    """The ~100k-node stretch run (workers 1 and 4 only)."""
    rows = _bench_worker_matrix(registry, (STRETCH_SIZE,), (1, 4))
    assert rows[0]["nodes"] >= 100000
    _finish_parallel(rows)
