"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table/figure/number of the paper's
evaluation (see DESIGN.md section 4 for the experiment index).  The
benchmarks *assert* the shape claims -- who wins, by roughly what factor
-- and attach the measured values as ``benchmark.extra_info`` so the raw
numbers land in the pytest-benchmark report.
"""

from __future__ import annotations

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)


@pytest.fixture
def registry():
    return standard_registry()


@pytest.fixture
def infrastructure():
    return standard_infrastructure()


@pytest.fixture
def drivers():
    return standard_drivers()


@pytest.fixture
def openmrs_partial():
    return PartialInstallSpec(
        [
            PartialInstance(
                "server",
                as_key("Mac-OSX 10.6"),
                config={"hostname": "demotest", "os_user_name": "root"},
            ),
            PartialInstance(
                "tomcat", as_key("Tomcat 6.0.18"), inside_id="server"
            ),
            PartialInstance(
                "openmrs", as_key("OpenMRS 1.8"), inside_id="tomcat"
            ),
        ]
    )
