"""E1/E2/E3 -- the S2 OpenMRS numbers.

Paper: "the (unsimplified) OpenMRS partial installation specification
took 22 lines, and the full installation specification was 204 lines"
(~9x compaction); the constraint set of S2 (3 facts, the {jdk, jre}
exactly-one, 5 inside implications) solved by MiniSat with jdk/jre
mutually exclusive; and the Figure 5 hypergraph (6 instances).
"""

from __future__ import annotations

import pytest

from repro.config import (
    ConfigurationEngine,
    generate_constraints,
    generate_graph,
)
from repro.core.resource_type import DependencyKind
from repro.dsl import full_to_json, line_count, partial_to_json
from repro.sat import CdclSolver


def test_e1_spec_compaction(benchmark, registry, openmrs_partial):
    """E1: partial -> full line counts and the compaction ratio."""
    engine = ConfigurationEngine(registry)
    result = benchmark(engine.configure, openmrs_partial)

    partial_lines = line_count(partial_to_json(openmrs_partial))
    full_lines = line_count(full_to_json(result.spec))
    ratio = full_lines / partial_lines

    benchmark.extra_info.update(
        {
            "paper_partial_lines": 22,
            "paper_full_lines": 204,
            "paper_ratio": round(204 / 22, 1),
            "measured_partial_lines": partial_lines,
            "measured_full_lines": full_lines,
            "measured_ratio": round(ratio, 1),
            "instances": len(result.spec),
        }
    )
    # Shape: the full spec is roughly an order of magnitude larger.
    assert ratio > 4
    assert len(result.spec) == 5  # server, tomcat, openmrs, mysql, one java


def test_e2_constraint_set(benchmark, registry, openmrs_partial):
    """E2: the S2 Boolean constraints and their solution."""
    graph = generate_graph(registry, openmrs_partial)

    def build_and_solve():
        formula, stats = generate_constraints(graph)
        solver = CdclSolver(formula)
        assert solver.solve()
        return formula, stats, solver

    formula, stats, solver = benchmark(build_and_solve)
    model = {
        str(name): value
        for name, value in formula.decode_model(solver.model()).items()
    }

    benchmark.extra_info.update(
        {
            "facts": stats.facts,
            "hyperedges": stats.hyperedges,
            "variables": stats.variables,
            "clauses": stats.clauses,
            "model": {k: v for k, v in sorted(model.items())},
        }
    )
    # The S2 constraint census: 3 facts from the partial spec; 5 inside
    # dependencies; 2 env hyperedges over {jdk, jre}; 1 peer implication.
    assert stats.facts == 3
    assert stats.hyperedges == 8
    # The paper's solution sets server/tomcat/openmrs/mysql true and
    # exactly one of {jdk, jre}.
    for instance_id in ("server", "tomcat", "openmrs", "mysql"):
        assert model[instance_id] is True
    assert model["jdk"] != model["jre"]


def test_figure1_resource_types(benchmark, registry):
    """Figure 1: the resource types relevant to the OpenMRS install,
    regenerated as DSL text.  The figure's structure -- Server over two
    OS subtypes, Java over JDK/JRE, Tomcat inside Server with a Java env
    dep, OpenMRS inside Tomcat with Java env + MySQL peer -- is asserted
    on the rendered module."""
    from repro.core import as_key
    from repro.dsl import format_module

    figure1_keys = [
        "Server", "Mac-OSX 10.6", "Windows-XP 5.1",
        "Java", "JDK 1.6", "JRE 1.6",
        "Tomcat 6.0.18", "MySQL 5.1", "OpenMRS 1.8",
    ]

    def render():
        return format_module(
            [registry.raw(as_key(key)) for key in figure1_keys]
        )

    text = benchmark(render)
    benchmark.extra_info["figure1_lines"] = len(text.splitlines())

    assert 'abstract resource "Server"' in text
    assert 'resource "Mac-OSX" 10.6 extends "Server"' in text
    assert 'abstract resource "Java"' in text
    assert 'resource "JDK" 1.6 extends "Java"' in text
    assert 'resource "JRE" 1.6 extends "Java"' in text
    # Tomcat: inside Server, env Java.  (Blocks end at a line-initial
    # closing brace; inline mapping braces don't terminate them.)
    tomcat_block = text.split('resource "Tomcat" 6.0.18')[1].split("\n}")[0]
    assert 'inside "Server"' in tomcat_block
    assert 'env "Java"' in tomcat_block
    # OpenMRS: inside Tomcat (either version), env Java, peer MySQL.
    openmrs_block = text.split('resource "OpenMRS" 1.8')[1].split("\n}")[0]
    assert 'inside "Tomcat" 5.5 | "Tomcat" 6.0.18' in openmrs_block
    assert 'env "Java"' in openmrs_block
    assert 'peer "MySQL" 5.1' in openmrs_block


def test_e3_figure5_hypergraph(benchmark, registry, openmrs_partial):
    """E3: the Figure 5 hypergraph structure."""
    graph = benchmark(generate_graph, registry, openmrs_partial)

    nodes = {n.instance_id for n in graph.nodes()}
    inside_edges = sorted(
        (e.source_id, e.targets[0])
        for e in graph.edges()
        if e.kind == DependencyKind.INSIDE
    )
    env_edges = sorted(
        (e.source_id, tuple(sorted(e.targets)))
        for e in graph.edges()
        if e.kind == DependencyKind.ENVIRONMENT
    )
    peer_edges = sorted(
        (e.source_id, tuple(sorted(e.targets)))
        for e in graph.edges()
        if e.kind == DependencyKind.PEER
    )
    benchmark.extra_info.update(
        {
            "nodes": sorted(nodes),
            "inside_edges": inside_edges,
            "env_edges": env_edges,
            "peer_edges": peer_edges,
        }
    )
    assert nodes == {"server", "tomcat", "openmrs", "jdk", "jre", "mysql"}
    assert inside_edges == [
        ("jdk", "server"),
        ("jre", "server"),
        ("mysql", "server"),
        ("openmrs", "tomcat"),
        ("tomcat", "server"),
    ]
    assert env_edges == [
        ("openmrs", ("jdk", "jre")),
        ("tomcat", ("jdk", "jre")),
    ]
    assert peer_edges == [("openmrs", ("mysql",))]
