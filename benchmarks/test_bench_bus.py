"""Bus control plane at fleet scale: message cost and time-to-recover.

One results file (``benchmarks/BENCH_bus.json``), two sections:

* **partition_sweep** -- a 1018-instance fleet (208 replicas on 64
  machines, one wave) deploys over the message bus while the network
  between master and slaves is cut from t=0 for 0/60/180/600 simulated
  seconds.  Asserts that the deployment converges every time, that
  time-to-recover (makespan minus the unpartitioned makespan) tracks
  the partition duration, and that the control-plane message count
  grows with it (retransmits into the void plus catch-up after heal)
  while the *work* stays exactly-once: per-machine executions never
  exceed the fleet's machine count.
* **failover** -- the same fleet with the master killed mid-deploy:
  the standby adopts the write-ahead control log and finishes without
  re-running a single completed action, at a bounded message overhead
  over the unfaulted run.

Simulated seconds measure recovery cost; wall seconds are recorded per
section for honesty.  Render with ``python benchmarks/report.py --bus``.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.config import ConfigurationEngine
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.library.fleet import FleetTopology, fleet_partial
from repro.runtime import BusChaos, BusCoordinator

#: ~1000 graph nodes on 64 machines: the headline fleet, single wave.
TOPOLOGY = FleetTopology(replicas=208, machines=64)

#: Partition durations swept (simulated seconds, cut from t=0).
PARTITION_SWEEP = (0.0, 60.0, 180.0, 600.0)

#: Time-to-recover must stay within this of the partition duration:
#: healing is prompt (first retransmit timer after the heal), never
#: compounding.
RECOVERY_SLACK_SECONDS = 30.0

RESULTS_PATH = pathlib.Path(__file__).parent / "BENCH_bus.json"


def _update_results(section: str, payload: dict) -> dict:
    """Merge ``section`` into the shared results file and return it."""
    data: dict = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            data = {}
    data["benchmark"] = "bus_control_plane"
    data[section] = payload
    RESULTS_PATH.write_text(
        json.dumps(data, indent=2) + "\n", encoding="utf-8"
    )
    return data


def _fleet_spec(registry):
    return (
        ConfigurationEngine(registry, partition=True, verify_registry=False)
        .configure(fleet_partial(TOPOLOGY))
        .spec
    )


def _bus_deploy(registry, spec, chaos=None):
    infrastructure = standard_infrastructure()
    coordinator = BusCoordinator(
        registry, infrastructure, standard_drivers(),
        max_sim_seconds=100_000.0,
    )
    deployment = coordinator.deploy(spec, chaos=chaos)
    assert deployment.is_deployed()
    return deployment


def test_partition_recovery_cost_tracks_duration():
    started = time.perf_counter()
    registry = standard_registry()
    spec = _fleet_spec(registry)
    fleet_size = len(spec)
    machines = len(spec.machines())
    assert fleet_size >= 1000

    rows = []
    baseline_makespan = None
    for duration in PARTITION_SWEEP:
        chaos = (
            BusChaos(partition_at=0.0, partition_for=duration)
            if duration > 0 else None
        )
        deployment = _bus_deploy(registry, spec, chaos)
        report = deployment.report
        makespan = report.parallel_makespan_seconds
        if baseline_makespan is None:
            baseline_makespan = makespan
        recover = makespan - baseline_makespan
        # Exactly-once work no matter how long the master shouted into
        # the void: one execution per machine, zero resumes.
        assert report.work_executions == machines
        assert report.work_resumes == 0
        rows.append(
            {
                "partition_seconds": duration,
                "makespan_seconds": makespan,
                "time_to_recover_seconds": recover,
                "messages_sent": report.bus_stats["total_sent"],
                "messages_delivered": report.bus_stats["total_delivered"],
                "partition_losses": report.bus_stats["partition_losses"],
                "retransmits": report.retransmits,
                "redundant_acks": report.redundant_acks,
            }
        )

    # Recovery time tracks the cut: within a retransmit interval of the
    # partition duration, and strictly increasing across the sweep.
    for duration, row in zip(PARTITION_SWEEP, rows):
        assert row["time_to_recover_seconds"] >= duration - 1e-6
        assert (
            row["time_to_recover_seconds"]
            <= duration + RECOVERY_SLACK_SECONDS
        )
    recoveries = [row["time_to_recover_seconds"] for row in rows]
    assert recoveries == sorted(recoveries)

    # Longer partitions cost more messages (retransmits + losses), and
    # losses actually happened whenever there was a cut.
    messages = [row["messages_sent"] for row in rows]
    assert messages == sorted(messages)
    assert messages[-1] > messages[0]
    for row in rows[1:]:
        assert row["partition_losses"] > 0
        assert row["retransmits"] > 0

    _update_results(
        "partition_sweep",
        {
            "instances": fleet_size,
            "machines": machines,
            "baseline_makespan_seconds": baseline_makespan,
            "recovery_slack_seconds": RECOVERY_SLACK_SECONDS,
            "wall_seconds": time.perf_counter() - started,
            "sweep": rows,
        },
    )


def test_failover_overhead_is_bounded():
    started = time.perf_counter()
    registry = standard_registry()
    spec = _fleet_spec(registry)
    machines = len(spec.machines())

    unfaulted = _bus_deploy(registry, spec, None)
    failed_over = _bus_deploy(
        registry, spec, BusChaos(failover_at=120.0)
    )
    report = failed_over.report
    assert report.masters == ["master", "master-2"]
    # The standby re-adopts the frontier: not one completed action
    # re-ran anywhere in the fleet.
    assert report.work_executions == machines
    assert report.work_resumes == 0
    overhead = (
        report.parallel_makespan_seconds
        - unfaulted.report.parallel_makespan_seconds
    )
    # Convergence is prompt: within one retransmit interval.
    assert overhead <= RECOVERY_SLACK_SECONDS

    _update_results(
        "failover",
        {
            "instances": len(spec),
            "machines": machines,
            "failover_at_seconds": 120.0,
            "unfaulted_makespan_seconds":
                unfaulted.report.parallel_makespan_seconds,
            "failover_makespan_seconds":
                report.parallel_makespan_seconds,
            "makespan_overhead_seconds": overhead,
            "messages_sent_unfaulted":
                unfaulted.report.bus_stats["total_sent"],
            "messages_sent_failover": report.bus_stats["total_sent"],
            "retransmits": report.retransmits,
            "wall_seconds": time.perf_counter() - started,
        },
    )
