"""E11 + the parallel-deployment ablation (S5, Figure 3).

Figure 3's guards are what prevent the "intermittent failure due to
connection errors" hazard: ``start`` requires all upstream dependencies
active, ``stop`` requires all downstream dependents inactive.  These
benchmarks exercise the guard discipline on a live deployment and
measure the sequential-vs-parallel (critical path) deployment cost the
paper's "can be performed in parallel" remark implies.
"""

from __future__ import annotations

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import DriverError, GuardError
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import DeploymentEngine


def openmrs_spec(registry):
    partial = PartialInstallSpec(
        [
            PartialInstance("server", as_key("Mac-OSX 10.6"),
                            config={"hostname": "demotest"}),
            PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                            inside_id="server"),
            PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                            inside_id="tomcat"),
        ]
    )
    return ConfigurationEngine(registry).configure(partial).spec


def test_e11_guarded_deployment(benchmark):
    """Deployment respects the Figure 3 guards: starts happen in
    dependency order and the system ends fully active."""

    def run():
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(openmrs_spec(registry))
        return system

    system = benchmark.pedantic(run, rounds=1, iterations=1)
    starts = [
        a.instance_id for a in system.report.actions if a.action == "start"
    ]
    benchmark.extra_info.update(
        {
            "start_order": starts,
            "sequential_seconds": round(
                system.report.sequential_seconds, 1
            ),
            "makespan_seconds": round(system.report.makespan_seconds, 1),
        }
    )
    assert system.is_deployed()
    assert starts.index("tomcat") < starts.index("openmrs")
    assert starts.index("mysql") < starts.index("openmrs")


def test_e11_unguarded_start_fails_like_the_paper_warns(benchmark):
    """Ignore the guards (start OpenMRS first) and the simulated TCP
    layer produces exactly the connection-refused failure S1 describes."""

    def run():
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        spec = openmrs_spec(registry)
        machines = engine._resolve_machines(spec)
        drivers = engine._create_drivers(spec, machines)
        for instance in spec.topological_order():
            drivers[instance.id].perform("install")
        try:
            drivers["openmrs"].perform("start")  # deps not started
        except DriverError as exc:
            return str(exc)
        return None

    failure = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["failure"] = failure
    assert failure is not None
    assert "not reachable" in failure


def test_ablation_parallel_vs_sequential_makespan(benchmark):
    """Design-choice ablation: the dependency DAG admits parallelism, so
    the critical-path makespan beats the sequential total whenever
    independent siblings exist (MySQL and the Java runtime, here)."""

    def run():
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(openmrs_spec(registry))
        return (
            system.report.sequential_seconds,
            system.report.makespan_seconds,
        )

    sequential, makespan = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "sequential_seconds": round(sequential, 1),
            "parallel_makespan_seconds": round(makespan, 1),
            "speedup": round(sequential / makespan, 2),
        }
    )
    assert makespan < sequential  # real parallelism exists in the DAG
    assert sequential / makespan < 6  # but the chain dominates


def test_e11_monitor_detects_and_restarts(benchmark):
    """Monitoring keeps the deployed system live: kill a service, poll,
    and the watchdog restores connectivity (the monit integration)."""
    from repro.runtime import ProcessMonitor

    def run():
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(openmrs_spec(registry))
        monitor = ProcessMonitor(system)
        monitor.generate_config()
        system.driver("mysql").process.fail()
        down = not infrastructure.network.can_connect("demotest", 3306)
        events = monitor.poll()
        up = infrastructure.network.can_connect("demotest", 3306)
        return down, len(events), up

    down, events, up = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"went_down": down, "restart_events": events, "back_up": up}
    )
    assert down and events == 1 and up
