"""E11 + the parallel-deployment ablation (S5, Figure 3).

Figure 3's guards are what prevent the "intermittent failure due to
connection errors" hazard: ``start`` requires all upstream dependencies
active, ``stop`` requires all downstream dependents inactive.  These
benchmarks exercise the guard discipline on a live deployment and
measure the sequential-vs-parallel (critical path) deployment cost the
paper's "can be performed in parallel" remark implies.
"""

from __future__ import annotations

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import DriverError, GuardError
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import DeploymentEngine


def openmrs_spec(registry):
    partial = PartialInstallSpec(
        [
            PartialInstance("server", as_key("Mac-OSX 10.6"),
                            config={"hostname": "demotest"}),
            PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                            inside_id="server"),
            PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                            inside_id="tomcat"),
        ]
    )
    return ConfigurationEngine(registry).configure(partial).spec


def test_e11_guarded_deployment(benchmark):
    """Deployment respects the Figure 3 guards: starts happen in
    dependency order and the system ends fully active."""

    def run():
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(openmrs_spec(registry))
        return system

    system = benchmark.pedantic(run, rounds=1, iterations=1)
    starts = [
        a.instance_id for a in system.report.actions if a.action == "start"
    ]
    benchmark.extra_info.update(
        {
            "start_order": starts,
            "sequential_seconds": round(
                system.report.sequential_seconds, 1
            ),
            "makespan_seconds": round(system.report.makespan_seconds, 1),
        }
    )
    assert system.is_deployed()
    assert starts.index("tomcat") < starts.index("openmrs")
    assert starts.index("mysql") < starts.index("openmrs")


def test_e11_unguarded_start_fails_like_the_paper_warns(benchmark):
    """Ignore the guards (start OpenMRS first) and the simulated TCP
    layer produces exactly the connection-refused failure S1 describes."""

    def run():
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        spec = openmrs_spec(registry)
        machines = engine._resolve_machines(spec)
        drivers = engine._create_drivers(spec, machines)
        for instance in spec.topological_order():
            drivers[instance.id].perform("install")
        try:
            drivers["openmrs"].perform("start")  # deps not started
        except DriverError as exc:
            return str(exc)
        return None

    failure = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["failure"] = failure
    assert failure is not None
    assert "not reachable" in failure


def test_ablation_parallel_vs_sequential_makespan(benchmark):
    """Design-choice ablation: the dependency DAG admits parallelism, so
    the critical-path makespan beats the sequential total whenever
    independent siblings exist (MySQL and the Java runtime, here)."""

    def run():
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(openmrs_spec(registry))
        return (
            system.report.sequential_seconds,
            system.report.makespan_seconds,
        )

    sequential, makespan = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "sequential_seconds": round(sequential, 1),
            "parallel_makespan_seconds": round(makespan, 1),
            "speedup": round(sequential / makespan, 2),
        }
    )
    assert makespan < sequential  # real parallelism exists in the DAG
    assert sequential / makespan < 6  # but the chain dominates


def test_measured_parallel_scheduler_hits_critical_path(benchmark):
    """The event-driven scheduler *measures* what the ablation above
    predicts: with unbounded workers the wall-clock makespan lands on
    the critical-path bound exactly, strictly below the sequential
    total."""

    def run():
        results = {}
        for jobs in (1, 2, 4, 0):
            registry = standard_registry()
            infrastructure = standard_infrastructure()
            engine = DeploymentEngine(
                registry, infrastructure, standard_drivers()
            )
            system = engine.deploy(openmrs_spec(registry), jobs=jobs)
            assert system.is_deployed()
            results[jobs] = system.report
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    unbounded = results[0]
    serial = results[1]
    benchmark.extra_info.update(
        {
            "sequential_seconds": round(unbounded.sequential_seconds, 1),
            "makespan_by_jobs": {
                str(jobs): round(report.makespan_seconds, 1)
                for jobs, report in results.items()
            },
            "critical_path_seconds": round(
                unbounded.critical_path_seconds, 1
            ),
            "speedup_unbounded": round(
                unbounded.sequential_seconds / unbounded.makespan_seconds, 2
            ),
        }
    )
    # Acceptance: measured makespan == critical-path bound (1e-6) and
    # strictly < sequential (independent siblings exist).
    assert (
        abs(unbounded.makespan_seconds - unbounded.critical_path_seconds)
        < 1e-6
    )
    assert unbounded.makespan_seconds < unbounded.sequential_seconds
    # One worker measures the sequential total; more workers never hurt.
    assert (
        abs(serial.makespan_seconds - serial.sequential_seconds) < 1e-6
    )
    assert (
        results[4].makespan_seconds
        <= results[2].makespan_seconds + 1e-9
        <= serial.makespan_seconds + 2e-9
    )


def test_measured_parallel_scheduler_django_stack(benchmark):
    """The same acceptance property on a wider topology: the S6.2
    production WebApp stack (23 configured instances over two machines)
    has far more independent siblings than OpenMRS, so parallelism buys
    about 2x."""
    from repro.django import package_application, table1_apps
    from repro.runtime import provision_partial_spec

    def run():
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        webapp = next(a for a in table1_apps() if a.name == "WebApp")
        app_key = package_application(webapp, registry, infrastructure)
        partial = PartialInstallSpec(
            [
                PartialInstance("webnode", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "www1"}),
                PartialInstance("dbnode", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "db1"}),
                PartialInstance("app", app_key, inside_id="webnode"),
                PartialInstance("web", as_key("Gunicorn 0.13"),
                                inside_id="webnode"),
                PartialInstance("db", as_key("MySQL 5.1"),
                                inside_id="dbnode"),
                PartialInstance("queue", as_key("RabbitMQ 2.7"),
                                inside_id="webnode"),
                PartialInstance("mon", as_key("Monit 5.3"),
                                inside_id="webnode"),
            ]
        )
        partial = provision_partial_spec(registry, partial, infrastructure)
        spec = ConfigurationEngine(
            registry, verify_registry=False
        ).configure(partial).spec
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(spec, jobs=0)
        assert system.is_deployed()
        return len(spec), system.report

    size, report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "instances": size,
            "sequential_seconds": round(report.sequential_seconds, 1),
            "parallel_makespan_seconds": round(report.makespan_seconds, 1),
            "critical_path_seconds": round(
                report.critical_path_seconds, 1
            ),
            "speedup": round(
                report.sequential_seconds / report.makespan_seconds, 2
            ),
        }
    )
    assert (
        abs(report.makespan_seconds - report.critical_path_seconds) < 1e-6
    )
    assert report.makespan_seconds < report.sequential_seconds
    assert report.sequential_seconds / report.makespan_seconds > 1.5


def test_e11_monitor_detects_and_restarts(benchmark):
    """Monitoring keeps the deployed system live: kill a service, poll,
    and the watchdog restores connectivity (the monit integration)."""
    from repro.runtime import ProcessMonitor

    def run():
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(openmrs_spec(registry))
        monitor = ProcessMonitor(system)
        monitor.generate_config()
        system.driver("mysql").process.fail()
        down = not infrastructure.network.can_connect("demotest", 3306)
        events = monitor.poll()
        up = infrastructure.network.can_connect("demotest", 3306)
        return down, len(events), up

    down, events, up = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"went_down": down, "restart_events": events, "back_up": up}
    )
    assert down and events == 1 and up
