"""Elasticity: delta transitions cost O(diff), not O(fleet).

One results file (``benchmarks/BENCH_delta.json``), two sections:

* **elasticity** -- a django fleet grows 10 -> 100 -> 1000 replicas on
  a fixed machine pool, each step executed as a planned delta
  transition.  Every plan must contain exactly the added instances
  (installs only -- growth never touches the live fleet), the final
  system must be indistinguishable from a fresh deploy of the final
  goal (states, running processes modulo pid, package databases), and
  an identical second run must replay bit-identical down to the
  persisted world and state files.
* **scale** -- a small delta (+10 replicas) against the live
  1000-replica fleet: the plan must stay under 10% of the fleet, and
  the recorded wall times show the delta execute beating the paper's
  worst-case full redeploy of the same goal.

Simulated seconds measure driver work; wall seconds are recorded per
section for honesty.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.config import ConfigurationEngine
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.library.fleet import FleetTopology, fleet_partial
from repro.runtime import (
    DeploymentEngine,
    DeploymentJournal,
    execute_delta,
    plan_delta,
    save_system,
)
from repro.sim.persistence import save_world

#: The growth ladder: replicas per step, machines fixed so existing
#: replicas never relocate.
LADDER = (10, 100, 1000)
MACHINES = 64
STACKS = ("django",)

#: A small elastic event against the full fleet.
SCALE_GROW = 10
MAX_PLAN_FRACTION = 0.10

RESULTS_PATH = pathlib.Path(__file__).parent / "BENCH_delta.json"


def _update_results(section: str, payload: dict) -> dict:
    """Merge ``section`` into the shared results file and return it."""
    data: dict = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            data = {}
    data["benchmark"] = "delta_transitions"
    data[section] = payload
    RESULTS_PATH.write_text(
        json.dumps(data, indent=2) + "\n", encoding="utf-8"
    )
    return data


def topology(replicas):
    return FleetTopology(
        replicas=replicas, machines=MACHINES, stacks=STACKS
    )


def configure(partial):
    return (
        ConfigurationEngine(
            standard_registry(), partition=True, verify_registry=False
        )
        .configure(partial)
        .spec
    )


def deploy(partial):
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    spec = (
        ConfigurationEngine(
            registry, partition=True, verify_registry=False
        )
        .configure(partial)
        .spec
    )
    engine = DeploymentEngine(registry, infrastructure, standard_drivers())
    system = engine.deploy(spec, journal=DeploymentJournal(spec))
    assert system.is_deployed()
    return engine, infrastructure, system


def fingerprint(system, infrastructure):
    """What must match a fresh deploy: driver states, running
    processes modulo pid, package databases, registered machines."""
    machines = sorted(
        set(system.machines.values()), key=lambda m: m.hostname
    )
    return {
        "states": dict(sorted(system.states().items())),
        "running": {
            machine.hostname: sorted(
                (p.name, tuple(p.listen_ports), p.instance_id)
                for p in machine.processes()
                if p.state.value == "running"
            )
            for machine in machines
        },
        "packages": {
            machine.hostname: sorted(
                (record.name, record.version, sorted(record.owners))
                for record in infrastructure.package_manager(
                    machine
                ).installed()
            )
            for machine in machines
        },
        "network": sorted(
            machine.hostname
            for machine in infrastructure.network.machines()
        ),
    }


def climb_ladder():
    """Deploy the smallest rung, then delta-grow through the ladder;
    returns (engine, infrastructure, system, legs)."""
    engine, infrastructure, system = deploy(fleet_partial(topology(LADDER[0])))
    legs = []
    previous = LADDER[0]
    for replicas in LADDER[1:]:
        new_spec = configure(fleet_partial(topology(replicas)))
        started = time.perf_counter()
        delta = plan_delta(system, new_spec)
        plan_seconds = time.perf_counter() - started
        added = set(new_spec.ids()) - set(system.spec.ids())
        # Growth is installs only, one per added instance: O(diff).
        assert set(delta.plan.by_op()) == {"install"}
        assert len(delta) == len(added)
        assert delta.stop_down == []
        assert delta.uninstall_down == []
        assert delta.retire_hostnames == []
        started = time.perf_counter()
        result = execute_delta(engine, system, delta)
        execute_seconds = time.perf_counter() - started
        assert result.system.is_deployed()
        assert result.journal.is_complete()
        legs.append(
            {
                "from_replicas": previous,
                "to_replicas": replicas,
                "fleet_nodes": len(new_spec),
                "diff_size": len(added),
                "plan_size": len(delta),
                "plan_fraction": len(delta) / len(new_spec),
                "plan_seconds": plan_seconds,
                "execute_seconds": execute_seconds,
            }
        )
        system = result.system
        previous = replicas
    return engine, infrastructure, system, legs


def test_elastic_growth_is_o_diff():
    started = time.perf_counter()
    engine, infrastructure, system, legs = climb_ladder()

    # The grown fleet is indistinguishable from a fresh deploy of the
    # final goal (modulo pid on surviving machines).
    final_partial = fleet_partial(topology(LADDER[-1]))
    fresh_started = time.perf_counter()
    _, fresh_infrastructure, fresh_system = deploy(final_partial)
    fresh_deploy_seconds = time.perf_counter() - fresh_started
    assert fingerprint(system, infrastructure) == fingerprint(
        fresh_system, fresh_infrastructure
    )

    # Determinism: an identical second climb replays to the bit.
    _, infrastructure2, system2, legs2 = climb_ladder()
    assert [leg["plan_size"] for leg in legs] == [
        leg["plan_size"] for leg in legs2
    ]
    assert save_world(infrastructure) == save_world(infrastructure2)
    assert save_system(system, system.journal) == save_system(
        system2, system2.journal
    )

    _update_results(
        "elasticity",
        {
            "ladder": list(LADDER),
            "machines": MACHINES,
            "stacks": list(STACKS),
            "fresh_deploy_seconds_final": fresh_deploy_seconds,
            "wall_seconds": time.perf_counter() - started,
            "legs": legs,
        },
    )


def test_small_delta_on_thousand_replica_fleet():
    started = time.perf_counter()
    engine, infrastructure, system = deploy(
        fleet_partial(topology(LADDER[-1]))
    )
    baseline_deploy_seconds = time.perf_counter() - started

    new_partial = fleet_partial(topology(LADDER[-1] + SCALE_GROW))
    new_spec = configure(new_partial)
    plan_started = time.perf_counter()
    delta = plan_delta(system, new_spec)
    plan_seconds = time.perf_counter() - plan_started

    # The acceptance bar: a small elastic event against a 1000-replica
    # fleet plans well under a tenth of the fleet.
    fleet_size = len(new_spec)
    assert fleet_size >= 5000
    assert len(delta) <= fleet_size * MAX_PLAN_FRACTION
    assert set(delta.plan.by_op()) == {"install"}

    execute_started = time.perf_counter()
    result = execute_delta(engine, system, delta)
    execute_seconds = time.perf_counter() - execute_started
    assert result.system.is_deployed()

    # The delta beats the paper's worst case (redeploy the world).
    assert execute_seconds < baseline_deploy_seconds

    _update_results(
        "scale",
        {
            "replicas": LADDER[-1],
            "grow_by": SCALE_GROW,
            "fleet_nodes": fleet_size,
            "plan_size": len(delta),
            "plan_fraction": len(delta) / fleet_size,
            "max_plan_fraction": MAX_PLAN_FRACTION,
            "plan_seconds": plan_seconds,
            "execute_seconds": execute_seconds,
            "worst_case_redeploy_seconds": baseline_deploy_seconds,
            "speedup_vs_redeploy": baseline_deploy_seconds
            / execute_seconds,
            "wall_seconds": time.perf_counter() - started,
        },
    )
